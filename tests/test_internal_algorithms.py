"""Cross-validation of every internal join algorithm against brute force."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.stats import CpuCounters
from repro.internal import (
    INTERNAL_ALGORITHMS,
    brute_force_pairs,
    internal_algorithm,
)

from tests.conftest import random_kpes

ALGO_NAMES = sorted(INTERNAL_ALGORITHMS)


def run_algo(name, left, right):
    counters = CpuCounters()
    pairs = []
    INTERNAL_ALGORITHMS[name](left, right, lambda r, s: pairs.append((r[0], s[0])), counters)
    return pairs, counters


class TestRegistry:
    def test_known_names(self):
        assert set(ALGO_NAMES) == {
            "nested_loops",
            "sweep_list",
            "sweep_trie",
            "sweep_tree",
            "sweep_numpy",
        }

    def test_lookup(self):
        assert internal_algorithm("sweep_list") is INTERNAL_ALGORITHMS["sweep_list"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            internal_algorithm("quantum_join")


@pytest.mark.parametrize("name", ALGO_NAMES)
class TestCorrectness:
    def test_matches_brute_force(self, name, small_pair):
        left, right = small_pair
        truth = sorted(brute_force_pairs(left, right))
        pairs, _ = run_algo(name, left, right)
        assert sorted(pairs) == truth

    def test_no_duplicates(self, name, small_pair):
        left, right = small_pair
        pairs, _ = run_algo(name, left, right)
        assert len(pairs) == len(set(pairs))

    def test_empty_left(self, name):
        pairs, _ = run_algo(name, [], random_kpes(10, 1))
        assert pairs == []

    def test_empty_right(self, name):
        pairs, _ = run_algo(name, random_kpes(10, 1), [])
        assert pairs == []

    def test_self_join_includes_self_pairs(self, name):
        rel = random_kpes(50, 3, max_edge=0.2)
        pairs, _ = run_algo(name, rel, rel)
        for k in rel:
            assert (k.oid, k.oid) in pairs

    def test_identical_rectangles(self, name):
        left = [KPE(i, 0.4, 0.4, 0.6, 0.6) for i in range(20)]
        right = [KPE(100 + i, 0.5, 0.5, 0.7, 0.7) for i in range(20)]
        pairs, _ = run_algo(name, left, right)
        assert len(pairs) == 400

    def test_degenerate_points_and_lines(self, name):
        left = [
            KPE(1, 0.5, 0.5, 0.5, 0.5),      # point
            KPE(2, 0.0, 0.5, 1.0, 0.5),      # horizontal line
            KPE(3, 0.5, 0.0, 0.5, 1.0),      # vertical line
        ]
        right = [KPE(10, 0.25, 0.25, 0.75, 0.75)]
        pairs, _ = run_algo(name, left, right)
        assert sorted(pairs) == [(1, 10), (2, 10), (3, 10)]

    def test_disjoint_relations(self, name):
        left = [KPE(i, 0.0, 0.0, 0.1, 0.1) for i in range(5)]
        right = [KPE(10 + i, 0.8, 0.8, 0.9, 0.9) for i in range(5)]
        pairs, _ = run_algo(name, left, right)
        assert pairs == []

    def test_counters_populated(self, name, small_pair):
        left, right = small_pair
        _, counters = run_algo(name, left, right)
        # The columnar kernel charges batch-level ops instead of scalar
        # intersection tests; either way the work must be accounted for.
        assert counters.intersection_tests > 0 or counters.batch_ops > 0

    def test_skewed_input(self, name, clustered_pair):
        left, right = clustered_pair
        truth = sorted(brute_force_pairs(left, right))
        pairs, _ = run_algo(name, left, right)
        assert sorted(pairs) == truth


class TestRelativeBehaviour:
    """The paper's qualitative claims about the internal algorithms."""

    def test_sweeps_do_fewer_tests_than_nested_loops(self, small_pair):
        left, right = small_pair
        _, nested = run_algo("nested_loops", left, right)
        _, sweep = run_algo("sweep_list", left, right)
        assert sweep.intersection_tests < nested.intersection_tests

    def test_trie_does_fewer_tests_than_list_on_large_inputs(self):
        left = random_kpes(1500, 41, max_edge=0.02)
        right = random_kpes(1500, 42, start_oid=10_000, max_edge=0.02)
        _, list_c = run_algo("sweep_list", left, right)
        _, trie_c = run_algo("sweep_trie", left, right)
        assert trie_c.intersection_tests < list_c.intersection_tests

    def test_trie_overhead_dominates_on_tiny_inputs(self):
        """Section 4.4.1: for S3J-sized partitions the trie's structure
        overhead exceeds the whole cost of nested loops."""
        left = random_kpes(6, 51, max_edge=0.3)
        right = random_kpes(6, 52, start_oid=100, max_edge=0.3)
        _, nested = run_algo("nested_loops", left, right)
        _, trie = run_algo("sweep_trie", left, right)
        nested_total = nested.total_ops()
        trie_total = trie.total_ops()
        assert trie_total > nested_total


@st.composite
def kpe_lists(draw):
    def to_kpe(oid, raw):
        x1, y1, x2, y2 = raw
        return KPE(oid, min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))

    raw = st.tuples(
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    )
    left = [to_kpe(i, r) for i, r in enumerate(draw(st.lists(raw, max_size=30)))]
    right = [
        to_kpe(1000 + i, r) for i, r in enumerate(draw(st.lists(raw, max_size=30)))
    ]
    return left, right


@pytest.mark.parametrize("name", ALGO_NAMES)
class TestHypothesisCrossValidation:
    @given(kpe_lists())
    def test_any_input_matches_brute_force(self, name, pair):
        left, right = pair
        truth = sorted(brute_force_pairs(left, right))
        pairs, _ = run_algo(name, left, right)
        assert sorted(pairs) == truth
