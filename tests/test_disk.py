"""Unit tests for the simulated disk and its phase accounting."""

import pytest

from repro.io.costmodel import CostModel
from repro.io.disk import IoCounters, SimulatedDisk


class TestIoCounters:
    def test_units_formula(self):
        cost = CostModel(pt_ratio=5.0)
        c = IoCounters(read_requests=2, pages_read=10, write_requests=1, pages_written=4)
        # 3 requests * PT + 14 pages
        assert c.units(cost) == pytest.approx(3 * 5.0 + 14)

    def test_add(self):
        a = IoCounters(read_requests=1, pages_read=2)
        a.add(IoCounters(write_requests=3, pages_written=4, pages_read=1))
        assert a.read_requests == 1
        assert a.pages_read == 3
        assert a.write_requests == 3
        assert a.pages_written == 4


class TestSimulatedDisk:
    def test_charges_to_current_phase(self):
        disk = SimulatedDisk()
        with disk.phase("alpha"):
            disk.charge_read(10)
        with disk.phase("beta"):
            disk.charge_write(4, requests=2)
        assert disk.counters["alpha"].pages_read == 10
        assert disk.counters["alpha"].read_requests == 1
        assert disk.counters["beta"].pages_written == 4
        assert disk.counters["beta"].write_requests == 2

    def test_nested_phases_restore(self):
        disk = SimulatedDisk()
        with disk.phase("outer"):
            with disk.phase("inner"):
                disk.charge_read(1)
            disk.charge_read(2)
        assert disk.counters["inner"].pages_read == 1
        assert disk.counters["outer"].pages_read == 2
        assert disk.current_phase == "default"

    def test_zero_page_charges_are_free(self):
        disk = SimulatedDisk()
        disk.charge_read(0)
        disk.charge_write(0)
        assert disk.total_units() == 0.0
        assert disk.counters == {}

    def test_units_by_phase(self):
        cost = CostModel(pt_ratio=2.0)
        disk = SimulatedDisk(cost)
        with disk.phase("p"):
            disk.charge_read(3)  # 2 + 3 = 5 units
        assert disk.units_by_phase() == {"p": pytest.approx(5.0)}
        assert disk.total_units() == pytest.approx(5.0)

    def test_total_counters(self):
        disk = SimulatedDisk()
        with disk.phase("a"):
            disk.charge_read(1)
        with disk.phase("b"):
            disk.charge_write(2)
        total = disk.total_counters()
        assert total.pages_read == 1
        assert total.pages_written == 2

    def test_reset(self):
        disk = SimulatedDisk()
        disk.charge_read(5)
        disk.reset()
        assert disk.total_units() == 0.0
