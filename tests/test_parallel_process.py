"""The process executor of ParallelPBSM: identical results, real fan-out.

The RPM contract is what makes this safe: partition pairs share no state,
each worker reports only pairs whose reference point it owns, and the
deterministic merge (ordered by partition id) reassembles exactly the
sequence the in-process executor produces.  These tests pin the
byte-identical claim, the graceful ``workers=1`` degrade (no pool), and
the plumbing (picklable grid specs, LPT chunking, counter merge).
"""

import pytest

from repro.core.space import Space
from repro.datasets import HAVE_GENERATORS
from repro.io.costmodel import mb
from repro.pbsm.grid import TileGrid
from repro.pbsm.parallel import (
    EXECUTORS,
    ParallelPBSM,
    _chunk_tasks,
    _grid_from_spec,
    _grid_spec,
)

from tests.conftest import random_kpes

LEFT = random_kpes(1500, seed=61, max_edge=0.02)
RIGHT = random_kpes(1500, seed=62, start_oid=10**6, max_edge=0.02)
MEMORY = mb(0.05)


def run(executor, workers, internal="sweep_trie", left=LEFT, right=RIGHT):
    join = ParallelPBSM(
        MEMORY, workers, internal=internal, executor=executor
    )
    return join.run(left, right)


class TestProcessExecutorParity:
    @pytest.mark.parametrize("internal", ["sweep_trie", "sweep_numpy"])
    def test_overlap_join_byte_identical(self, internal):
        sim = run("simulated", 2, internal)
        proc = run("process", 2, internal)
        assert proc.pairs == sim.pairs  # same pairs, same order
        assert proc.stats.duplicates_suppressed == sim.stats.duplicates_suppressed
        assert proc.stats.sim_seconds == pytest.approx(sim.stats.sim_seconds)
        assert proc.stats.cpu_by_phase == sim.stats.cpu_by_phase

    def test_self_join_byte_identical(self):
        sim = run("simulated", 2, left=LEFT, right=LEFT)
        proc = run("process", 2, left=LEFT, right=LEFT)
        assert proc.pairs == sim.pairs

    def test_executor_recorded_in_stats(self):
        assert run("process", 2).stats.executor == "process"
        assert run("simulated", 2).stats.executor == "simulated"


class TestGracefulDegrade:
    def test_workers_1_process_runs_in_process(self):
        # With one worker the process executor must not pay for a pool:
        # it takes the same in-process path as the simulated executor.
        one_proc = run("process", 1)
        one_sim = run("simulated", 1)
        assert one_proc.pairs == one_sim.pairs
        assert one_proc.stats.cpu_by_phase == one_sim.stats.cpu_by_phase

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            ParallelPBSM(MEMORY, 2, executor="threads")
        assert set(EXECUTORS) == {"simulated", "process", "thread"}

    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            ParallelPBSM(MEMORY, 2, scheduler="fifo")

    def test_invalid_workers_clamped_low(self):
        with pytest.warns(RuntimeWarning, match="below 1"):
            pbsm = ParallelPBSM(MEMORY, 0)
        assert pbsm.workers == 1
        with pytest.warns(RuntimeWarning, match="below 1"):
            assert ParallelPBSM(MEMORY, -3, executor="process").workers == 1

    def test_oversized_workers_clamped_for_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "4")
        with pytest.warns(RuntimeWarning, match="clamped to 4"):
            pbsm = ParallelPBSM(MEMORY, 99, executor="process")
        assert pbsm.workers == 4
        # The env override widens the clamp (oversubscription on purpose).
        monkeypatch.setenv("REPRO_MAX_WORKERS", "8")
        with pytest.warns(RuntimeWarning, match="clamped to 8"):
            assert ParallelPBSM(MEMORY, 99, executor="process").workers == 8

    def test_simulated_workers_not_capped(self):
        # The simulated executor models hypothetical hardware; a worker
        # count beyond this machine's cores is the whole point.
        assert ParallelPBSM(MEMORY, 64, executor="simulated").workers == 64


class TestPlumbing:
    def test_grid_spec_round_trip(self):
        grid = TileGrid(Space(0.0, 0.0, 2.0, 1.0), 8, 4, 5, mapping="hash")
        back = _grid_from_spec(_grid_spec(grid))
        assert back.nx == grid.nx and back.ny == grid.ny
        assert back.n_partitions == grid.n_partitions
        assert back.mapping == grid.mapping
        assert (
            back.space.xl, back.space.yl, back.space.xh, back.space.yh
        ) == (0.0, 0.0, 2.0, 1.0)
        # Identical ownership arithmetic after the round trip.
        for x, y in [(0.0, 0.0), (0.5, 0.25), (2.0, 1.0), (1.999, 0.999)]:
            assert back.partition_of_point(x, y) == grid.partition_of_point(x, y)

    def test_chunk_tasks_cover_all_tasks_once(self):
        tasks = [
            (pid, [("l",)] * (pid + 1), [("r",)] * (pid + 1))
            for pid in range(11)
        ]
        chunks = _chunk_tasks(tasks, 3)
        flat = [t for chunk in chunks for t in chunk]
        assert sorted(t[0] for t in flat) == list(range(11))

    def test_chunk_tasks_balances_by_records(self):
        # One giant task plus many small ones: LPT puts the giant task
        # alone in its chunk rather than stacking more onto it.
        tasks = [(0, [("l",)] * 1000, [("r",)] * 1000)] + [
            (pid, [("l",)], [("r",)]) for pid in range(1, 9)
        ]
        chunks = _chunk_tasks(tasks, 3)
        giant = next(c for c in chunks if any(t[0] == 0 for t in c))
        assert len(giant) == 1


class TestSpatialJoinWorkers:
    def test_workers_routes_to_process_pbsm(self):
        from repro import spatial_join

        plain = spatial_join(LEFT, RIGHT, MEMORY, method="pbsm", workers=1)
        assert plain.stats.executor == "process"
        assert plain.stats.algorithm.startswith("ParallelPBSM")
        # workers defaults the internal algorithm to the kernel.
        assert "sweep_numpy" in plain.stats.algorithm

    def test_workers_rejected_for_other_methods(self):
        from repro import spatial_join

        with pytest.raises(ValueError):
            spatial_join(LEFT, RIGHT, MEMORY, method="sssj", workers=2)

    @pytest.mark.skipif(not HAVE_GENERATORS, reason="CSV I/O needs numpy")
    def test_cli_workers_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets import save_relation

        lp = tmp_path / "l.csv"
        rp = tmp_path / "r.csv"
        save_relation(LEFT[:200], lp)
        save_relation(RIGHT[:200], rp)
        code = main(
            [
                "join",
                str(lp),
                str(rp),
                "--method",
                "pbsm",
                "--workers",
                "1",
                "--memory-mb",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executor" in out

    @pytest.mark.skipif(not HAVE_GENERATORS, reason="CSV I/O needs numpy")
    def test_cli_workers_requires_pbsm(self, tmp_path):
        from repro.cli import main
        from repro.datasets import save_relation

        lp = tmp_path / "l.csv"
        rp = tmp_path / "r.csv"
        save_relation(LEFT[:50], lp)
        save_relation(RIGHT[:50], rp)
        code = main(
            [
                "join",
                str(lp),
                str(rp),
                "--method",
                "sssj",
                "--workers",
                "2",
            ]
        )
        assert code == 2
