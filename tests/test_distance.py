"""Tests for the distance (similarity) join — the paper's future work."""

import math

import pytest

from repro.core.distance import distance_join, expand_for_distance, mbr_distance
from repro.core.rect import KPE

from tests.conftest import random_kpes


def brute_distance_pairs(left, right, eps):
    return {
        (a.oid, b.oid)
        for a in left
        for b in right
        if mbr_distance(a, b) <= eps
    }


class TestMbrDistance:
    def test_intersecting_is_zero(self):
        a = KPE(1, 0.0, 0.0, 0.5, 0.5)
        b = KPE(2, 0.4, 0.4, 1.0, 1.0)
        assert mbr_distance(a, b) == 0.0

    def test_horizontal_gap(self):
        a = KPE(1, 0.0, 0.0, 0.2, 1.0)
        b = KPE(2, 0.5, 0.0, 1.0, 1.0)
        assert mbr_distance(a, b) == pytest.approx(0.3)

    def test_diagonal_gap(self):
        a = KPE(1, 0.0, 0.0, 0.1, 0.1)
        b = KPE(2, 0.4, 0.5, 1.0, 1.0)
        assert mbr_distance(a, b) == pytest.approx(math.hypot(0.3, 0.4))

    def test_symmetric(self):
        a = KPE(1, 0.0, 0.0, 0.1, 0.2)
        b = KPE(2, 0.7, 0.5, 1.0, 1.0)
        assert mbr_distance(a, b) == mbr_distance(b, a)


class TestExpansion:
    def test_expand_amount(self):
        (k,) = expand_for_distance([KPE(1, 0.4, 0.4, 0.6, 0.6)], 0.2)
        assert (k.xl, k.yl, k.xh, k.yh) == pytest.approx((0.3, 0.3, 0.7, 0.7))

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            expand_for_distance([], -1.0)

    def test_zero_eps_identity(self):
        kpes = random_kpes(10, 1)
        assert expand_for_distance(kpes, 0.0) == kpes


class TestDistanceJoin:
    @pytest.mark.parametrize("method", ["pbsm", "s3j", "sssj"])
    def test_matches_brute_force(self, method):
        left = random_kpes(120, 61, max_edge=0.02)
        right = random_kpes(120, 62, start_oid=9_000, max_edge=0.02)
        eps = 0.05
        res = distance_join(left, right, eps, 4096, method=method)
        assert res.pair_set() == brute_distance_pairs(left, right, eps)
        assert not res.has_duplicates()

    def test_eps_zero_equals_intersection_join(self):
        from repro.internal import brute_force_pairs

        left = random_kpes(100, 63, max_edge=0.05)
        right = random_kpes(100, 64, start_oid=9_000, max_edge=0.05)
        res = distance_join(left, right, 0.0, 4096)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_result_grows_with_eps(self):
        left = random_kpes(100, 65, max_edge=0.02)
        right = random_kpes(100, 66, start_oid=9_000, max_edge=0.02)
        small = distance_join(left, right, 0.01, 4096)
        large = distance_join(left, right, 0.10, 4096)
        assert small.pair_set() <= large.pair_set()

    def test_inexact_mode_is_superset(self):
        """Without the exact post-filter the corner candidates remain."""
        left = random_kpes(100, 67, max_edge=0.02)
        right = random_kpes(100, 68, start_oid=9_000, max_edge=0.02)
        eps = 0.08
        exact = distance_join(left, right, eps, 4096, exact=True)
        loose = distance_join(left, right, eps, 4096, exact=False)
        assert exact.pair_set() <= loose.pair_set()
