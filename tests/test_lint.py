"""The repro-lint invariant engine.

Three layers are pinned here: (1) each shipped rule fires on a bad
snippet and stays silent on a good one — both the rule's own embedded
fixtures (via the engine self-test) and independent fixtures written
here, so a rule cannot "pass" by testing itself against a stale copy of
its own blind spot; (2) the engine mechanics — suppression comments,
syntax-error reporting, rule selection, file discovery, CLI exit codes;
(3) the repository itself: ``python -m repro.lint src benchmarks tests``
must exit 0, which is the self-check CI runs and the reason the rules
exist at all.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    RULES_BY_ID,
    lint_source,
    run_lint,
    self_test,
)
from repro.lint.engine import SYNTAX_RULE_ID

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TARGETS = ["src", "benchmarks", "tests"]


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint_one(source, rule_id, path="module.py"):
    return lint_source(source, path=path, rules=[RULES_BY_ID[rule_id]])


# ----------------------------------------------------------------------
# rule catalogue and embedded fixtures
# ----------------------------------------------------------------------
class TestCatalogue:
    def test_twelve_rules_shipped(self):
        assert [r.rule_id for r in ALL_RULES] == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
            "RPL009",
            "RPL010",
            "RPL011",
            "RPL012",
        ]

    def test_every_rule_has_title_and_fixtures(self):
        for rule in ALL_RULES:
            assert rule.title, rule.rule_id
            assert rule.fixture_bad, rule.rule_id
            assert rule.fixture_good, rule.rule_id

    def test_self_test_passes(self):
        assert self_test() == []


# ----------------------------------------------------------------------
# RPL001 — numpy gate
# ----------------------------------------------------------------------
class TestNumpyGate:
    def test_flags_top_level_import(self):
        bad = "import numpy as np\nX = np.zeros(3)\n"
        assert rules_of(lint_one(bad, "RPL001")) == ["RPL001"]

    def test_flags_from_import(self):
        bad = "from numpy import zeros\n"
        assert rules_of(lint_one(bad, "RPL001")) == ["RPL001"]

    def test_flags_submodule_import(self):
        bad = "import numpy.linalg\n"
        assert rules_of(lint_one(bad, "RPL001")) == ["RPL001"]

    def test_allows_function_local_import(self):
        good = "def f():\n    import numpy as np\n    return np.zeros(3)\n"
        assert lint_one(good, "RPL001") == []

    def test_allows_kernels_package(self):
        bad = "import numpy as np\n"
        path = "src/repro/kernels/fast.py"
        assert lint_one(bad, "RPL001", path=path) == []

    def test_backend_gate_is_the_sanctioned_route(self):
        good = (
            "from repro.kernels.backend import require_numpy_module\n"
            "def gen(n):\n"
            "    np = require_numpy_module()\n"
            "    return np.zeros(n)\n"
        )
        assert lint_one(good, "RPL001") == []

    def test_numpy_free_interpreter_can_import_everything(self):
        """The invariant RPL001 exists to protect, checked for real."""
        script = (
            "import builtins, importlib, pkgutil, sys\n"
            "real = builtins.__import__\n"
            "def guard(name, *a, **k):\n"
            "    if name == 'numpy' or name.startswith('numpy.'):\n"
            "        raise ImportError('numpy blocked by test')\n"
            "    return real(name, *a, **k)\n"
            "builtins.__import__ = guard\n"
            "sys.modules.pop('numpy', None)\n"
            "import repro\n"
            "bad = []\n"
            "for m in pkgutil.walk_packages(repro.__path__, 'repro.'):\n"
            "    try:\n"
            "        importlib.import_module(m.name)\n"
            "    except ImportError as exc:\n"
            "        if 'numpy blocked' in str(exc):\n"
            "            bad.append(m.name)\n"
            "print(','.join(bad))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "", (
            f"modules that import numpy at import time: {proc.stdout}"
        )


# ----------------------------------------------------------------------
# RPL002 — phase literals
# ----------------------------------------------------------------------
class TestPhaseLiteral:
    def test_flags_by_phase_subscript(self):
        bad = 'def f(stats):\n    return stats.cpu_by_phase["join"]\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_by_phase_get(self):
        bad = 'def f(s):\n    return s.io_units_by_phase.get("repartition", 0)\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_phase_keyword(self):
        bad = 'def f(timer):\n    timer.charge(1.0, phase="dedup")\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_comparison_against_phase(self):
        bad = 'def f(span):\n    return span.phase == "sort"\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_local_call_with_phase_param(self):
        bad = (
            "def charge(counters, phase):\n"
            "    return phase\n"
            "def f(counters):\n"
            '    return charge(counters, "partition")\n'
        )
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_constant_from_core_phases_is_clean(self):
        good = (
            "from repro.core.phases import PHASE_JOIN\n"
            "def f(stats):\n"
            "    return stats.cpu_by_phase[PHASE_JOIN]\n"
        )
        assert lint_one(good, "RPL002") == []

    def test_non_phase_context_stays_legal(self):
        # argparse choices, dict keys of unrelated maps: "join" is a fine
        # word outside a phase position (this is cli.py's situation).
        good = (
            "def build(sub):\n"
            '    sub.add_parser("join")\n'
            '    return {"mode": "sort"}\n'
        )
        assert lint_one(good, "RPL002") == []

    def test_core_phases_itself_exempt(self):
        good = 'PHASE_JOIN = "join"\n'
        assert lint_one(good, "RPL002", path="src/repro/core/phases.py") == []


# ----------------------------------------------------------------------
# RPL003 — tile-hash drift
# ----------------------------------------------------------------------
class TestTileHashDrift:
    def test_flags_retyped_multiplier(self):
        bad = "H = 73856093\n"
        assert rules_of(lint_one(bad, "RPL003")) == ["RPL003"]

    def test_flags_shadow_constant(self):
        bad = "from repro.pbsm.grid import TILE_HASH_X as _x\nTILE_HASH_X = _x\n"
        assert rules_of(lint_one(bad, "RPL003")) == ["RPL003"]

    def test_flags_rederived_hash_expression(self):
        bad = (
            "from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y\n"
            "def owner(tx, ty, n):\n"
            "    return ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % n\n"
        )
        assert rules_of(lint_one(bad, "RPL003")) == ["RPL003"]

    def test_grid_definition_site_exempt(self):
        source = "TILE_HASH_X = 73856093\nTILE_HASH_Y = 19349663\n"
        assert lint_one(source, "RPL003", path="src/repro/pbsm/grid.py") == []

    def test_rpm_replay_site_may_hash_but_not_retype(self):
        replay = (
            "from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y\n"
            "def owners(tx, ty, n):\n"
            "    return ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % n\n"
        )
        path = "src/repro/kernels/rpm.py"
        assert lint_one(replay, "RPL003", path=path) == []
        retyped = "def owners(tx, ty, n):\n    return ((tx * 73856093) ^ (ty * 19349663)) % n\n"
        assert rules_of(lint_one(retyped, "RPL003", path=path)) == ["RPL003"]

    def test_calling_the_grid_api_is_clean(self):
        good = "def owner(grid, tx, ty):\n    return grid.partition_of_tile(tx, ty)\n"
        assert lint_one(good, "RPL003") == []


# ----------------------------------------------------------------------
# RPL004 — shm lifecycle
# ----------------------------------------------------------------------
class TestShmLifecycle:
    BAD = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def leak():\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    seg.buf[0] = 1\n"
        "    seg.close()\n"  # not on the exception path
    )

    def test_flags_unprotected_binding(self):
        assert rules_of(lint_one(self.BAD, "RPL004")) == ["RPL004"]

    def test_with_statement_is_custody(self):
        good = (
            "def f(store_cls, arrays):\n"
            "    with store_cls.create(arrays) as store:\n"
            "        return store.manifest\n"
        )
        # `store_cls.create` is not a Store receiver, so make it explicit:
        good = good.replace("store_cls", "SharedColumnarStore")
        assert lint_one(good, "RPL004") == []

    def test_try_finally_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f():\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    try:\n"
            "        seg.buf[0] = 1\n"
            "    finally:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )
        assert lint_one(good, "RPL004") == []

    def test_ownership_escape_via_return_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def open_segment():\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    return seg\n"
        )
        assert lint_one(good, "RPL004") == []

    def test_global_pool_state_is_custody(self):
        good = (
            "_SEG = None\n"
            "def _pool_init(manifest):\n"
            "    global _SEG\n"
            "    _SEG = SharedColumnarStore.attach(manifest)\n"
        )
        assert lint_one(good, "RPL004") == []

    def test_attribute_assignment_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "class Holder:\n"
            "    def open(self):\n"
            "        self.seg = SharedMemory(create=True, size=8)\n"
        )
        assert lint_one(good, "RPL004") == []


# ----------------------------------------------------------------------
# RPL005 — counter currency
# ----------------------------------------------------------------------
class TestCounterCurrency:
    def _project(self, extra_counter="", extra_param="", extra_price=""):
        return (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class CpuCounters:\n"
            "    intersection_tests: int = 0\n"
            f"{extra_counter}"
            "@dataclass\n"
            "class CostModel:\n"
            "    test_op_seconds: float = 2.0e-6\n"
            "    def cpu_seconds(self, counters):\n"
            "        return (counters.intersection_tests * self.test_op_seconds\n"
            f"{extra_price}"
            "        )\n"
            "    def cpu_seconds_from_counts(self, *, intersection_tests=0.0"
            f"{extra_param}):\n"
            "        return intersection_tests * self.test_op_seconds\n"
            "def format_stats(stats):\n"
            "    return str(stats.cpu_by_phase)\n"
        )

    def test_unpriced_counter_flagged_twice(self):
        src = self._project(extra_counter="    shiny_ops: int = 0\n")
        findings = lint_one(src, "RPL005")
        assert rules_of(findings) == ["RPL005"]
        messages = " ".join(f.message for f in findings)
        assert "not priced" in messages
        assert "cpu_seconds_from_counts" in messages

    def test_fully_wired_counter_is_clean(self):
        src = self._project(
            extra_counter="    shiny_ops: int = 0\n",
            extra_price="            + counters.shiny_ops * self.test_op_seconds\n",
            extra_param=", shiny_ops=0.0",
        )
        assert lint_one(src, "RPL005") == []

    def test_result_tallies_exempt(self):
        src = self._project(extra_counter="    results_reported: int = 0\n")
        assert lint_one(src, "RPL005") == []

    def test_silent_when_classes_absent(self):
        assert lint_one("x = 1\n", "RPL005") == []

    def test_real_codebase_is_current(self):
        findings = run_lint(
            [
                REPO_ROOT / "src/repro/core/stats.py",
                REPO_ROOT / "src/repro/io/costmodel.py",
                REPO_ROOT / "src/repro/core/report.py",
            ],
            rules=[RULES_BY_ID["RPL005"]],
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL006 — silent broad except
# ----------------------------------------------------------------------
class TestSilentExcept:
    def test_flags_swallowing_handler(self):
        bad = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert rules_of(lint_one(bad, "RPL006")) == ["RPL006"]

    def test_flags_bare_except(self):
        bad = "try:\n    x = 1\nexcept:\n    x = 2\n"
        assert rules_of(lint_one(bad, "RPL006")) == ["RPL006"]

    def test_reraise_is_fine(self):
        good = "try:\n    x = 1\nexcept Exception:\n    raise\n"
        assert lint_one(good, "RPL006") == []

    def test_logging_is_fine(self):
        good = (
            "import logging\n"
            "try:\n"
            "    x = 1\n"
            "except Exception as exc:\n"
            "    logging.warning('op failed: %s', exc)\n"
        )
        assert lint_one(good, "RPL006") == []

    def test_narrow_types_are_fine(self):
        good = "try:\n    x = 1\nexcept (OSError, ValueError):\n    x = 2\n"
        assert lint_one(good, "RPL006") == []


# ----------------------------------------------------------------------
# RPL007 — blocking engine calls inside async def
# ----------------------------------------------------------------------
class TestAsyncBlockingCall:
    def test_flags_direct_call_in_coroutine(self):
        bad = (
            "from repro import spatial_join\n"
            "async def handle(left, right):\n"
            "    return spatial_join(left, right, 1 << 20)\n"
        )
        assert rules_of(lint_one(bad, "RPL007")) == ["RPL007"]

    def test_flags_attribute_call_in_coroutine(self):
        bad = (
            "import repro.datasets.fileio as fileio\n"
            "async def ingest(path):\n"
            "    return fileio.load_relation(path)\n"
        )
        assert rules_of(lint_one(bad, "RPL007")) == ["RPL007"]

    def test_run_blocking_wrapper_is_fine(self):
        good = (
            "from repro import spatial_join\n"
            "from repro.serve.executor import run_blocking\n"
            "async def handle(left, right):\n"
            "    return await run_blocking(spatial_join, left, right, 1 << 20)\n"
        )
        assert lint_one(good, "RPL007") == []

    def test_nested_sync_def_is_fine(self):
        good = (
            "from repro import spatial_join\n"
            "async def handle(left, right):\n"
            "    def work():\n"
            "        return spatial_join(left, right, 1 << 20)\n"
            "    return work\n"
        )
        assert lint_one(good, "RPL007") == []

    def test_sync_functions_unaffected(self):
        good = (
            "from repro import spatial_join\n"
            "def handle(left, right):\n"
            "    return spatial_join(left, right, 1 << 20)\n"
        )
        assert lint_one(good, "RPL007") == []

    def test_serve_package_is_current(self):
        findings = run_lint(
            [REPO_ROOT / "src/repro/serve"],
            rules=[RULES_BY_ID["RPL007"]],
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL008 — segment custody on all paths
# ----------------------------------------------------------------------
class TestSegmentCustodyPaths:
    # The acceptance shape: custody exists *somewhere* (try/finally), so
    # RPL004 is satisfied — but an early return above the try leaks.
    BRANCH_LEAK = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def probe(flag):\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    if flag:\n"
        "        return None\n"
        "    try:\n"
        "        seg.buf[0] = 1\n"
        "    finally:\n"
        "        seg.close()\n"
        "        seg.unlink()\n"
        "    return True\n"
    )

    def test_branch_leak_flagged(self):
        findings = lint_one(self.BRANCH_LEAK, "RPL008")
        assert rules_of(findings) == ["RPL008"]
        assert findings[0].line == 3  # the acquisition site

    def test_rpl004_is_blind_to_the_branch_leak(self):
        """The reason RPL008 exists: the syntactic rule passes this."""
        assert lint_one(self.BRANCH_LEAK, "RPL004") == []

    def test_exception_path_leak_flagged(self):
        bad = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f(x):\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    try:\n"
            "        y = compute(x)\n"
            "    except ValueError:\n"
            "        return None\n"
            "    seg.close()\n"
            "    seg.unlink()\n"
            "    return y\n"
        )
        assert rules_of(lint_one(bad, "RPL008")) == ["RPL008"]

    def test_early_return_inside_try_is_clean(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f(flag):\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    try:\n"
            "        if flag:\n"
            "            return 0\n"
            "        return 1\n"
            "    finally:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )
        assert lint_one(good, "RPL008") == []

    def test_failed_acquisition_does_not_leak(self):
        """If the constructor raises, no segment exists: the exception
        edge must carry the *pre*-acquisition state into the handler
        (this is the `_platform_has_shm` probe shape in kernels/shm.py).
        """
        good = (
            "def probe():\n"
            "    from multiprocessing.shared_memory import SharedMemory\n"
            "    try:\n"
            "        seg = SharedMemory(create=True, size=8)\n"
            "        try:\n"
            "            seg.buf[0] = 1\n"
            "        finally:\n"
            "            seg.close()\n"
            "            seg.unlink()\n"
            "    except (ImportError, OSError):\n"
            "        return False\n"
            "    return True\n"
        )
        assert lint_one(good, "RPL008") == []

    def test_call_argument_escape_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f(registry):\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    registry.adopt(seg)\n"
        )
        assert lint_one(good, "RPL008") == []

    def test_close_on_one_branch_only_is_flagged(self):
        bad = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f(flag):\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    if flag:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )
        assert rules_of(lint_one(bad, "RPL008")) == ["RPL008"]


# ----------------------------------------------------------------------
# RPL009 — lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    HEADER = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._datasets = {}\n"
        "    def get(self, name):\n"
        "        with self._lock:\n"
        "            return self._datasets[name]\n"
    )

    def test_unlocked_access_to_guarded_attr_flagged(self):
        bad = self.HEADER + (
            "    def put(self, name, ds):\n"
            "        self._datasets[name] = ds\n"
        )
        findings = lint_one(bad, "RPL009")
        assert rules_of(findings) == ["RPL009"]
        assert "_datasets" in findings[0].message

    def test_explicit_acquire_release_counts_as_held(self):
        good = self.HEADER + (
            "    def put(self, name, ds):\n"
            "        self._lock.acquire()\n"
            "        self._datasets[name] = ds\n"
            "        self._lock.release()\n"
        )
        assert lint_one(good, "RPL009") == []

    def test_conditional_acquire_is_not_protection(self):
        """Must-analysis: held on *all* paths or it does not count."""
        bad = self.HEADER + (
            "    def put(self, name, ds, fast):\n"
            "        if not fast:\n"
            "            self._lock.acquire()\n"
            "        self._datasets[name] = ds\n"
        )
        assert rules_of(lint_one(bad, "RPL009")) == ["RPL009"]

    def test_init_is_exempt(self):
        # __init__ runs before the object is shared; HEADER's own
        # unlocked `self._datasets = {}` in __init__ must not fire.
        assert lint_one(self.HEADER, "RPL009") == []

    def test_lock_order_inversion_flagged(self):
        bad = (
            "import threading\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def one(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        findings = lint_one(bad, "RPL009")
        assert rules_of(findings) == ["RPL009"]
        assert "inversion" in findings[0].message

    def test_out_of_scope_package_modules_skipped(self):
        bad = self.HEADER + (
            "    def put(self, name, ds):\n"
            "        self._datasets[name] = ds\n"
        )
        path = "src/repro/pbsm/parallel.py"
        assert lint_one(bad, "RPL009", path=path) == []

    def test_serve_and_planner_cache_are_clean(self):
        findings = run_lint(
            [REPO_ROOT / "src/repro/serve", REPO_ROOT / "src/repro/planner"],
            rules=[RULES_BY_ID["RPL009"]],
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL010 — charge-once counter conservation
# ----------------------------------------------------------------------
class TestChargeOnce:
    def test_hoisted_counter_merged_per_iteration_flagged(self):
        bad = (
            "from repro.core.stats import CpuCounters\n"
            "def run(parts, total):\n"
            "    scratch = CpuCounters()\n"
            "    for part in parts:\n"
            "        total.add(scratch)\n"
        )
        findings = lint_one(bad, "RPL010")
        assert rules_of(findings) == ["RPL010"]
        assert "more than once" in findings[0].message

    def test_merge_skipped_on_one_branch_flagged(self):
        bad = (
            "from repro.core.stats import CpuCounters\n"
            "def run(total, flag):\n"
            "    scratch = CpuCounters()\n"
            "    scratch.intersection_tests += 1\n"
            "    if flag:\n"
            "        total.add(scratch)\n"
        )
        findings = lint_one(bad, "RPL010")
        assert rules_of(findings) == ["RPL010"]
        assert "never merges" in findings[0].message

    def test_counter_created_inside_loop_is_clean(self):
        good = (
            "from repro.core.stats import CpuCounters\n"
            "def run(parts, total):\n"
            "    for part in parts:\n"
            "        scratch = CpuCounters()\n"
            "        total.add(scratch)\n"
        )
        assert lint_one(good, "RPL010") == []

    def test_discard_scratch_never_merged_is_exempt(self):
        # The sanctioned stripe-split pattern: siblings charge shared
        # sort work into a throwaway counter that is never merged.
        good = (
            "from repro.core.stats import CpuCounters\n"
            "def replay(parts):\n"
            "    scratch = CpuCounters()\n"
            "    scratch.intersection_tests += len(parts)\n"
            "    return len(parts)\n"
        )
        assert lint_one(good, "RPL010") == []

    def test_straight_line_create_then_merge_is_clean(self):
        good = (
            "from repro.core.stats import CpuCounters\n"
            "def run(total):\n"
            "    scratch = CpuCounters()\n"
            "    total.add(scratch)\n"
        )
        assert lint_one(good, "RPL010") == []


# ----------------------------------------------------------------------
# RPL011 — span pairing
# ----------------------------------------------------------------------
class TestSpanPairing:
    def test_discarded_span_flagged(self):
        bad = (
            "def f(tracer):\n"
            '    tracer.span("join")\n'
            "    return 1\n"
        )
        findings = lint_one(bad, "RPL011")
        assert rules_of(findings) == ["RPL011"]
        assert "never records" in findings[0].message

    def test_span_not_exited_on_early_return_flagged(self):
        bad = (
            "def f(tracer, flag):\n"
            '    span = tracer.span("join")\n'
            "    if flag:\n"
            "        return 0\n"
            "    span.__exit__(None, None, None)\n"
            "    return 1\n"
        )
        assert rules_of(lint_one(bad, "RPL011")) == ["RPL011"]

    def test_with_statement_is_clean(self):
        good = (
            "def f(tracer, flag):\n"
            '    with tracer.span("join"):\n'
            "        if flag:\n"
            "            return 0\n"
            "    return 1\n"
        )
        assert lint_one(good, "RPL011") == []

    def test_exit_in_finally_is_clean(self):
        good = (
            "def f(tracer, work):\n"
            '    span = tracer.span("join")\n'
            "    try:\n"
            "        return work()\n"
            "    finally:\n"
            "        span.__exit__(None, None, None)\n"
        )
        assert lint_one(good, "RPL011") == []

    def test_trace_definition_site_exempt(self):
        bad = 'def f(tracer):\n    tracer.span("join")\n'
        path = "src/repro/obs/trace.py"
        assert lint_one(bad, "RPL011", path=path) == []

    def test_module_level_span_checked(self):
        bad = 'import tracer\ntracer.span("boot")\n'
        assert rules_of(lint_one(bad, "RPL011")) == ["RPL011"]


# ----------------------------------------------------------------------
# RPL012 — thread-pool workers and shared state
# ----------------------------------------------------------------------
class TestThreadExecutorShared:
    def test_unlocked_self_write_in_mapped_worker_flagged(self):
        bad = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "class Engine:\n"
            "    def run(self, units):\n"
            "        def work(unit):\n"
            "            self.completed += 1\n"
            "            return unit\n"
            "        with ThreadPoolExecutor(max_workers=2) as pool:\n"
            "            return list(pool.map(work, units))\n"
        )
        findings = lint_one(bad, "RPL012")
        assert rules_of(findings) == ["RPL012"]
        assert "self.completed" in findings[0].message

    def test_worker_passed_alongside_pool_var_flagged(self):
        # The scheduler's own dispatch shape: self._drain(pool, work, ...)
        bad = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "class Engine:\n"
            "    def run(self, units):\n"
            "        def work(unit):\n"
            "            self.completed = unit\n"
            "            return unit\n"
            "        pool = ThreadPoolExecutor(max_workers=2)\n"
            "        return self._drain(pool, work, units)\n"
        )
        assert rules_of(lint_one(bad, "RPL012")) == ["RPL012"]

    def test_locked_write_is_clean(self):
        good = (
            "import threading\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "class Engine:\n"
            "    def run(self, units):\n"
            "        def work(unit):\n"
            "            with self._lock:\n"
            "                self.completed += 1\n"
            "            return unit\n"
            "        with ThreadPoolExecutor(max_workers=2) as pool:\n"
            "            return list(pool.map(work, units))\n"
        )
        assert lint_one(good, "RPL012") == []

    def test_return_value_worker_is_clean(self):
        good = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run(units):\n"
            "    def work(unit):\n"
            "        total = unit * 2\n"
            "        return total\n"
            "    with ThreadPoolExecutor(max_workers=2) as pool:\n"
            "        return list(pool.map(work, units))\n"
        )
        assert lint_one(good, "RPL012") == []

    def test_process_pool_workers_not_in_scope(self):
        # Process workers get their own address space; writes are local.
        good = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "class Engine:\n"
            "    def run(self, units):\n"
            "        def work(unit):\n"
            "            self.completed = unit\n"
            "            return unit\n"
            "        with ProcessPoolExecutor(max_workers=2) as pool:\n"
            "            return list(pool.map(work, units))\n"
        )
        assert lint_one(good, "RPL012") == []

    def test_nonlocal_rebind_flagged(self):
        bad = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run(units):\n"
            "    done = 0\n"
            "    def work(unit):\n"
            "        nonlocal done\n"
            "        done = done + 1\n"
            "        return unit\n"
            "    with ThreadPoolExecutor(max_workers=2) as pool:\n"
            "        return list(pool.map(work, units))\n"
        )
        assert rules_of(lint_one(bad, "RPL012")) == ["RPL012"]


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
class TestEngine:
    def test_suppression_comment_silences_one_rule(self):
        src = "H = 73856093  # repro-lint: disable=RPL003\n"
        assert lint_source(src) == []

    def test_suppression_is_rule_specific(self):
        src = "H = 73856093  # repro-lint: disable=RPL006\n"
        assert rules_of(lint_source(src)) == ["RPL003"]

    def test_suppression_accepts_lists(self):
        src = (
            "import numpy  # repro-lint: disable=RPL001,RPL003\n"
            "H = 19349663  # repro-lint: disable=all\n"
        )
        assert lint_source(src) == []

    def test_suppression_covers_multiline_statement_extent(self):
        """A disable comment on *any* physical line of a multi-line
        simple statement suppresses findings anchored to the statement's
        first line (the ast node's lineno)."""
        src = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def probe():\n"
            "    seg = SharedMemory(\n"
            "        create=True,  # repro-lint: disable=RPL004,RPL008\n"
            "        size=8,\n"
            "    )\n"
            "    seg.buf[0] = 1\n"
        )
        assert lint_source(src) == []

    def test_multiline_suppression_is_still_rule_specific(self):
        src = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def probe():\n"
            "    seg = SharedMemory(\n"
            "        create=True,  # repro-lint: disable=RPL006\n"
            "        size=8,\n"
            "    )\n"
            "    seg.buf[0] = 1\n"
        )
        assert rules_of(lint_source(src)) == ["RPL004", "RPL008"]

    def test_compound_header_comment_does_not_blanket_the_block(self):
        # Expansion applies to *simple* statements only; a disable on an
        # `if` header must not silence findings inside the block.
        src = "if True:  # repro-lint: disable=RPL001\n    import numpy\n"
        assert rules_of(lint_source(src)) == ["RPL001"]

    def test_syntax_error_reported_as_rpl000(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == [SYNTAX_RULE_ID]

    def test_findings_render_as_path_line_col(self):
        findings = lint_one("import numpy\n", "RPL001", path="pkg/mod.py")
        assert findings[0].render().startswith("pkg/mod.py:1:0: RPL001 ")

    def test_run_lint_on_directory(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import numpy\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "sneaky.py").write_text("import numpy\n")
        findings = run_lint([tmp_path], rules=[RULES_BY_ID["RPL001"]])
        assert [Path(f.path).name for f in findings] == ["bad.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/dir"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, *argv, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_repository_is_clean(self):
        """The CI self-check: the repo passes its own linter."""
        proc = self.run_cli(*LINT_TARGETS)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violations_exit_1(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy\n")
        proc = self.run_cli(str(bad))
        assert proc.returncode == 1
        assert "RPL001" in proc.stdout
        assert "disable=RPLxxx" in proc.stderr

    def test_select_limits_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy\nH = 73856093\n")
        proc = self.run_cli("--select", "RPL003", str(bad))
        assert proc.returncode == 1
        assert "RPL003" in proc.stdout and "RPL001" not in proc.stdout

    def test_unknown_rule_is_usage_error(self, tmp_path):
        proc = self.run_cli("--select", "RPL999", str(tmp_path))
        assert proc.returncode == 2

    def test_no_paths_is_usage_error(self):
        proc = self.run_cli()
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule in ALL_RULES:
            assert rule.rule_id in proc.stdout

    def test_self_test_flag(self):
        proc = self.run_cli("--self-test")
        assert proc.returncode == 0
        assert "self-test ok" in proc.stdout


# ----------------------------------------------------------------------
# SARIF output, baseline burn-down, incremental cache
# ----------------------------------------------------------------------
class TestCiIntegration:
    run_cli = TestCli.run_cli

    BAD = "import numpy\nH = 73856093\n"

    def test_sarif_output_structure(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        out = tmp_path / "lint.sarif"
        proc = self.run_cli(
            "--format", "sarif", "--output", str(out), str(bad)
        )
        assert proc.returncode == 1  # findings still fail the run
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        shipped = {r["id"] for r in driver["rules"]}
        assert {r.rule_id for r in ALL_RULES} <= shipped
        results = run["results"]
        assert sorted(r["ruleId"] for r in results) == ["RPL001", "RPL003"]
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("bad.py")
        assert loc["region"]["startLine"] in (1, 2)

    def test_clean_run_emits_valid_empty_sarif(self, tmp_path):
        import json

        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        proc = self.run_cli("--format", "sarif", str(ok))
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["runs"][0]["results"] == []

    def test_write_then_apply_baseline(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        proc = self.run_cli("--write-baseline", str(baseline), str(bad))
        assert proc.returncode == 0
        assert "2 finding(s) written" in proc.stderr

        # grandfathered findings no longer fail the run ...
        proc = self.run_cli("--baseline", str(baseline), str(bad))
        assert proc.returncode == 0
        assert "2 grandfathered" in proc.stderr

        # ... but a *new* finding does, and is the only one reported.
        bad.write_text(self.BAD + "Y = 19349663\n")
        proc = self.run_cli("--baseline", str(baseline), str(bad))
        assert proc.returncode == 1
        assert proc.stdout.count("RPL003") == 1
        assert "RPL001" not in proc.stdout

    def test_checked_in_baseline_is_empty(self):
        """Satellite 2's contract: the repo lints clean with no
        grandfathered findings left to burn down."""
        import json

        doc = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert doc["findings"] == []

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n")
        missing = tmp_path / "nope.json"
        proc = self.run_cli("--baseline", str(missing), str(bad))
        assert proc.returncode == 2

    def test_cache_hits_on_unchanged_files(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"

        first = self.run_cli("--cache", str(cache), str(tmp_path))
        assert first.returncode == 1
        assert "cache: 0 hit(s), 2 miss(es)" in first.stderr

        second = self.run_cli("--cache", str(cache), str(tmp_path))
        assert second.returncode == 1
        assert "cache: 2 hit(s), 0 miss(es)" in second.stderr
        assert sorted(second.stdout.splitlines()) == sorted(
            first.stdout.splitlines()
        )

    def test_cache_invalidated_by_content_change(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        self.run_cli("--cache", str(cache), str(src))

        src.write_text("import numpy\n")
        proc = self.run_cli("--cache", str(cache), str(src))
        assert proc.returncode == 1
        assert "1 miss(es)" in proc.stderr
        assert "RPL001" in proc.stdout

    def test_cached_findings_still_honour_suppressions(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("H = 73856093  # repro-lint: disable=RPL003\n")
        cache = tmp_path / "cache.json"
        assert self.run_cli("--cache", str(cache), str(src)).returncode == 0
        assert self.run_cli("--cache", str(cache), str(src)).returncode == 0
