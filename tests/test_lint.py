"""The repro-lint invariant engine.

Three layers are pinned here: (1) each shipped rule fires on a bad
snippet and stays silent on a good one — both the rule's own embedded
fixtures (via the engine self-test) and independent fixtures written
here, so a rule cannot "pass" by testing itself against a stale copy of
its own blind spot; (2) the engine mechanics — suppression comments,
syntax-error reporting, rule selection, file discovery, CLI exit codes;
(3) the repository itself: ``python -m repro.lint src benchmarks tests``
must exit 0, which is the self-check CI runs and the reason the rules
exist at all.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    RULES_BY_ID,
    lint_source,
    run_lint,
    self_test,
)
from repro.lint.engine import SYNTAX_RULE_ID

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TARGETS = ["src", "benchmarks", "tests"]


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint_one(source, rule_id, path="module.py"):
    return lint_source(source, path=path, rules=[RULES_BY_ID[rule_id]])


# ----------------------------------------------------------------------
# rule catalogue and embedded fixtures
# ----------------------------------------------------------------------
class TestCatalogue:
    def test_seven_rules_shipped(self):
        assert [r.rule_id for r in ALL_RULES] == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
        ]

    def test_every_rule_has_title_and_fixtures(self):
        for rule in ALL_RULES:
            assert rule.title, rule.rule_id
            assert rule.fixture_bad, rule.rule_id
            assert rule.fixture_good, rule.rule_id

    def test_self_test_passes(self):
        assert self_test() == []


# ----------------------------------------------------------------------
# RPL001 — numpy gate
# ----------------------------------------------------------------------
class TestNumpyGate:
    def test_flags_top_level_import(self):
        bad = "import numpy as np\nX = np.zeros(3)\n"
        assert rules_of(lint_one(bad, "RPL001")) == ["RPL001"]

    def test_flags_from_import(self):
        bad = "from numpy import zeros\n"
        assert rules_of(lint_one(bad, "RPL001")) == ["RPL001"]

    def test_flags_submodule_import(self):
        bad = "import numpy.linalg\n"
        assert rules_of(lint_one(bad, "RPL001")) == ["RPL001"]

    def test_allows_function_local_import(self):
        good = "def f():\n    import numpy as np\n    return np.zeros(3)\n"
        assert lint_one(good, "RPL001") == []

    def test_allows_kernels_package(self):
        bad = "import numpy as np\n"
        path = "src/repro/kernels/fast.py"
        assert lint_one(bad, "RPL001", path=path) == []

    def test_backend_gate_is_the_sanctioned_route(self):
        good = (
            "from repro.kernels.backend import require_numpy_module\n"
            "def gen(n):\n"
            "    np = require_numpy_module()\n"
            "    return np.zeros(n)\n"
        )
        assert lint_one(good, "RPL001") == []

    def test_numpy_free_interpreter_can_import_everything(self):
        """The invariant RPL001 exists to protect, checked for real."""
        script = (
            "import builtins, importlib, pkgutil, sys\n"
            "real = builtins.__import__\n"
            "def guard(name, *a, **k):\n"
            "    if name == 'numpy' or name.startswith('numpy.'):\n"
            "        raise ImportError('numpy blocked by test')\n"
            "    return real(name, *a, **k)\n"
            "builtins.__import__ = guard\n"
            "sys.modules.pop('numpy', None)\n"
            "import repro\n"
            "bad = []\n"
            "for m in pkgutil.walk_packages(repro.__path__, 'repro.'):\n"
            "    try:\n"
            "        importlib.import_module(m.name)\n"
            "    except ImportError as exc:\n"
            "        if 'numpy blocked' in str(exc):\n"
            "            bad.append(m.name)\n"
            "print(','.join(bad))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "", (
            f"modules that import numpy at import time: {proc.stdout}"
        )


# ----------------------------------------------------------------------
# RPL002 — phase literals
# ----------------------------------------------------------------------
class TestPhaseLiteral:
    def test_flags_by_phase_subscript(self):
        bad = 'def f(stats):\n    return stats.cpu_by_phase["join"]\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_by_phase_get(self):
        bad = 'def f(s):\n    return s.io_units_by_phase.get("repartition", 0)\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_phase_keyword(self):
        bad = 'def f(timer):\n    timer.charge(1.0, phase="dedup")\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_comparison_against_phase(self):
        bad = 'def f(span):\n    return span.phase == "sort"\n'
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_flags_local_call_with_phase_param(self):
        bad = (
            "def charge(counters, phase):\n"
            "    return phase\n"
            "def f(counters):\n"
            '    return charge(counters, "partition")\n'
        )
        assert rules_of(lint_one(bad, "RPL002")) == ["RPL002"]

    def test_constant_from_core_phases_is_clean(self):
        good = (
            "from repro.core.phases import PHASE_JOIN\n"
            "def f(stats):\n"
            "    return stats.cpu_by_phase[PHASE_JOIN]\n"
        )
        assert lint_one(good, "RPL002") == []

    def test_non_phase_context_stays_legal(self):
        # argparse choices, dict keys of unrelated maps: "join" is a fine
        # word outside a phase position (this is cli.py's situation).
        good = (
            "def build(sub):\n"
            '    sub.add_parser("join")\n'
            '    return {"mode": "sort"}\n'
        )
        assert lint_one(good, "RPL002") == []

    def test_core_phases_itself_exempt(self):
        good = 'PHASE_JOIN = "join"\n'
        assert lint_one(good, "RPL002", path="src/repro/core/phases.py") == []


# ----------------------------------------------------------------------
# RPL003 — tile-hash drift
# ----------------------------------------------------------------------
class TestTileHashDrift:
    def test_flags_retyped_multiplier(self):
        bad = "H = 73856093\n"
        assert rules_of(lint_one(bad, "RPL003")) == ["RPL003"]

    def test_flags_shadow_constant(self):
        bad = "from repro.pbsm.grid import TILE_HASH_X as _x\nTILE_HASH_X = _x\n"
        assert rules_of(lint_one(bad, "RPL003")) == ["RPL003"]

    def test_flags_rederived_hash_expression(self):
        bad = (
            "from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y\n"
            "def owner(tx, ty, n):\n"
            "    return ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % n\n"
        )
        assert rules_of(lint_one(bad, "RPL003")) == ["RPL003"]

    def test_grid_definition_site_exempt(self):
        source = "TILE_HASH_X = 73856093\nTILE_HASH_Y = 19349663\n"
        assert lint_one(source, "RPL003", path="src/repro/pbsm/grid.py") == []

    def test_rpm_replay_site_may_hash_but_not_retype(self):
        replay = (
            "from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y\n"
            "def owners(tx, ty, n):\n"
            "    return ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % n\n"
        )
        path = "src/repro/kernels/rpm.py"
        assert lint_one(replay, "RPL003", path=path) == []
        retyped = "def owners(tx, ty, n):\n    return ((tx * 73856093) ^ (ty * 19349663)) % n\n"
        assert rules_of(lint_one(retyped, "RPL003", path=path)) == ["RPL003"]

    def test_calling_the_grid_api_is_clean(self):
        good = "def owner(grid, tx, ty):\n    return grid.partition_of_tile(tx, ty)\n"
        assert lint_one(good, "RPL003") == []


# ----------------------------------------------------------------------
# RPL004 — shm lifecycle
# ----------------------------------------------------------------------
class TestShmLifecycle:
    BAD = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def leak():\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    seg.buf[0] = 1\n"
        "    seg.close()\n"  # not on the exception path
    )

    def test_flags_unprotected_binding(self):
        assert rules_of(lint_one(self.BAD, "RPL004")) == ["RPL004"]

    def test_with_statement_is_custody(self):
        good = (
            "def f(store_cls, arrays):\n"
            "    with store_cls.create(arrays) as store:\n"
            "        return store.manifest\n"
        )
        # `store_cls.create` is not a Store receiver, so make it explicit:
        good = good.replace("store_cls", "SharedColumnarStore")
        assert lint_one(good, "RPL004") == []

    def test_try_finally_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f():\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    try:\n"
            "        seg.buf[0] = 1\n"
            "    finally:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )
        assert lint_one(good, "RPL004") == []

    def test_ownership_escape_via_return_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def open_segment():\n"
            "    seg = SharedMemory(create=True, size=8)\n"
            "    return seg\n"
        )
        assert lint_one(good, "RPL004") == []

    def test_global_pool_state_is_custody(self):
        good = (
            "_SEG = None\n"
            "def _pool_init(manifest):\n"
            "    global _SEG\n"
            "    _SEG = SharedColumnarStore.attach(manifest)\n"
        )
        assert lint_one(good, "RPL004") == []

    def test_attribute_assignment_is_custody(self):
        good = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "class Holder:\n"
            "    def open(self):\n"
            "        self.seg = SharedMemory(create=True, size=8)\n"
        )
        assert lint_one(good, "RPL004") == []


# ----------------------------------------------------------------------
# RPL005 — counter currency
# ----------------------------------------------------------------------
class TestCounterCurrency:
    def _project(self, extra_counter="", extra_param="", extra_price=""):
        return (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class CpuCounters:\n"
            "    intersection_tests: int = 0\n"
            f"{extra_counter}"
            "@dataclass\n"
            "class CostModel:\n"
            "    test_op_seconds: float = 2.0e-6\n"
            "    def cpu_seconds(self, counters):\n"
            "        return (counters.intersection_tests * self.test_op_seconds\n"
            f"{extra_price}"
            "        )\n"
            "    def cpu_seconds_from_counts(self, *, intersection_tests=0.0"
            f"{extra_param}):\n"
            "        return intersection_tests * self.test_op_seconds\n"
            "def format_stats(stats):\n"
            "    return str(stats.cpu_by_phase)\n"
        )

    def test_unpriced_counter_flagged_twice(self):
        src = self._project(extra_counter="    shiny_ops: int = 0\n")
        findings = lint_one(src, "RPL005")
        assert rules_of(findings) == ["RPL005"]
        messages = " ".join(f.message for f in findings)
        assert "not priced" in messages
        assert "cpu_seconds_from_counts" in messages

    def test_fully_wired_counter_is_clean(self):
        src = self._project(
            extra_counter="    shiny_ops: int = 0\n",
            extra_price="            + counters.shiny_ops * self.test_op_seconds\n",
            extra_param=", shiny_ops=0.0",
        )
        assert lint_one(src, "RPL005") == []

    def test_result_tallies_exempt(self):
        src = self._project(extra_counter="    results_reported: int = 0\n")
        assert lint_one(src, "RPL005") == []

    def test_silent_when_classes_absent(self):
        assert lint_one("x = 1\n", "RPL005") == []

    def test_real_codebase_is_current(self):
        findings = run_lint(
            [
                REPO_ROOT / "src/repro/core/stats.py",
                REPO_ROOT / "src/repro/io/costmodel.py",
                REPO_ROOT / "src/repro/core/report.py",
            ],
            rules=[RULES_BY_ID["RPL005"]],
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL006 — silent broad except
# ----------------------------------------------------------------------
class TestSilentExcept:
    def test_flags_swallowing_handler(self):
        bad = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert rules_of(lint_one(bad, "RPL006")) == ["RPL006"]

    def test_flags_bare_except(self):
        bad = "try:\n    x = 1\nexcept:\n    x = 2\n"
        assert rules_of(lint_one(bad, "RPL006")) == ["RPL006"]

    def test_reraise_is_fine(self):
        good = "try:\n    x = 1\nexcept Exception:\n    raise\n"
        assert lint_one(good, "RPL006") == []

    def test_logging_is_fine(self):
        good = (
            "import logging\n"
            "try:\n"
            "    x = 1\n"
            "except Exception as exc:\n"
            "    logging.warning('op failed: %s', exc)\n"
        )
        assert lint_one(good, "RPL006") == []

    def test_narrow_types_are_fine(self):
        good = "try:\n    x = 1\nexcept (OSError, ValueError):\n    x = 2\n"
        assert lint_one(good, "RPL006") == []


# ----------------------------------------------------------------------
# RPL007 — blocking engine calls inside async def
# ----------------------------------------------------------------------
class TestAsyncBlockingCall:
    def test_flags_direct_call_in_coroutine(self):
        bad = (
            "from repro import spatial_join\n"
            "async def handle(left, right):\n"
            "    return spatial_join(left, right, 1 << 20)\n"
        )
        assert rules_of(lint_one(bad, "RPL007")) == ["RPL007"]

    def test_flags_attribute_call_in_coroutine(self):
        bad = (
            "import repro.datasets.fileio as fileio\n"
            "async def ingest(path):\n"
            "    return fileio.load_relation(path)\n"
        )
        assert rules_of(lint_one(bad, "RPL007")) == ["RPL007"]

    def test_run_blocking_wrapper_is_fine(self):
        good = (
            "from repro import spatial_join\n"
            "from repro.serve.executor import run_blocking\n"
            "async def handle(left, right):\n"
            "    return await run_blocking(spatial_join, left, right, 1 << 20)\n"
        )
        assert lint_one(good, "RPL007") == []

    def test_nested_sync_def_is_fine(self):
        good = (
            "from repro import spatial_join\n"
            "async def handle(left, right):\n"
            "    def work():\n"
            "        return spatial_join(left, right, 1 << 20)\n"
            "    return work\n"
        )
        assert lint_one(good, "RPL007") == []

    def test_sync_functions_unaffected(self):
        good = (
            "from repro import spatial_join\n"
            "def handle(left, right):\n"
            "    return spatial_join(left, right, 1 << 20)\n"
        )
        assert lint_one(good, "RPL007") == []

    def test_serve_package_is_current(self):
        findings = run_lint(
            [REPO_ROOT / "src/repro/serve"],
            rules=[RULES_BY_ID["RPL007"]],
        )
        assert findings == []


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
class TestEngine:
    def test_suppression_comment_silences_one_rule(self):
        src = "H = 73856093  # repro-lint: disable=RPL003\n"
        assert lint_source(src) == []

    def test_suppression_is_rule_specific(self):
        src = "H = 73856093  # repro-lint: disable=RPL006\n"
        assert rules_of(lint_source(src)) == ["RPL003"]

    def test_suppression_accepts_lists(self):
        src = (
            "import numpy  # repro-lint: disable=RPL001,RPL003\n"
            "H = 19349663  # repro-lint: disable=all\n"
        )
        assert lint_source(src) == []

    def test_syntax_error_reported_as_rpl000(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == [SYNTAX_RULE_ID]

    def test_findings_render_as_path_line_col(self):
        findings = lint_one("import numpy\n", "RPL001", path="pkg/mod.py")
        assert findings[0].render().startswith("pkg/mod.py:1:0: RPL001 ")

    def test_run_lint_on_directory(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import numpy\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "sneaky.py").write_text("import numpy\n")
        findings = run_lint([tmp_path], rules=[RULES_BY_ID["RPL001"]])
        assert [Path(f.path).name for f in findings] == ["bad.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/dir"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, *argv, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_repository_is_clean(self):
        """The CI self-check: the repo passes its own linter."""
        proc = self.run_cli(*LINT_TARGETS)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violations_exit_1(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy\n")
        proc = self.run_cli(str(bad))
        assert proc.returncode == 1
        assert "RPL001" in proc.stdout
        assert "disable=RPLxxx" in proc.stderr

    def test_select_limits_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy\nH = 73856093\n")
        proc = self.run_cli("--select", "RPL003", str(bad))
        assert proc.returncode == 1
        assert "RPL003" in proc.stdout and "RPL001" not in proc.stdout

    def test_unknown_rule_is_usage_error(self, tmp_path):
        proc = self.run_cli("--select", "RPL999", str(tmp_path))
        assert proc.returncode == 2

    def test_no_paths_is_usage_error(self):
        proc = self.run_cli()
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule in ALL_RULES:
            assert rule.rule_id in proc.stdout

    def test_self_test_flag(self):
        proc = self.run_cli("--self-test")
        assert proc.returncode == 0
        assert "self-test ok" in proc.stdout
