"""Unit and property tests for the Reference Point Method primitive."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE, intersection, intersects, rect_contains_point
from repro.core.refpoint import reference_point


class TestReferencePointBasics:
    def test_paper_definition(self):
        r = KPE(1, 0.0, 0.0, 0.6, 0.6)
        s = KPE(2, 0.4, 0.2, 1.0, 0.5)
        # x = (max of left edges, min of upper edges)
        assert reference_point(r, s) == (0.4, 0.5)

    def test_symmetric(self):
        r = KPE(1, 0.0, 0.0, 0.6, 0.6)
        s = KPE(2, 0.4, 0.2, 1.0, 0.5)
        assert reference_point(r, s) == reference_point(s, r)

    def test_identical_rectangles(self):
        r = KPE(1, 0.2, 0.3, 0.4, 0.5)
        assert reference_point(r, r) == (0.2, 0.5)

    def test_is_upper_left_corner_of_intersection(self):
        r = KPE(1, 0.1, 0.1, 0.9, 0.9)
        s = KPE(2, 0.5, 0.0, 1.0, 0.7)
        x, y = reference_point(r, s)
        inter = intersection(r, s)
        assert inter is not None
        assert (x, y) == (inter[0], inter[3])


coords = st.floats(0, 1, allow_nan=False)
rect = st.tuples(coords, coords, coords, coords).map(
    lambda c: (min(c[0], c[2]), min(c[1], c[3]), max(c[0], c[2]), max(c[1], c[3]))
)


class TestReferencePointProperties:
    @given(rect, rect)
    def test_symmetry(self, ra, rb):
        a = KPE(1, *ra)
        b = KPE(2, *rb)
        assert reference_point(a, b) == reference_point(b, a)

    @given(rect, rect)
    def test_point_inside_both_when_intersecting(self, ra, rb):
        """The crucial RPM property: the reference point of an intersecting
        pair lies inside both rectangles, so the owning partition holds a
        copy of each."""
        a = KPE(1, *ra)
        b = KPE(2, *rb)
        if not intersects(a, b):
            return
        x, y = reference_point(a, b)
        assert rect_contains_point(a, x, y)
        assert rect_contains_point(b, x, y)

    @given(rect, rect)
    def test_point_unique_per_pair(self, ra, rb):
        """Determinism: the same pair always produces the same point."""
        a = KPE(1, *ra)
        b = KPE(2, *rb)
        assert reference_point(a, b) == reference_point(a, b)
