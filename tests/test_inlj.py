"""Tests for the index nested-loop join (index on one relation)."""

from repro.core.phases import PHASE_BUILD, PHASE_JOIN
from repro.internal import brute_force_pairs
from repro.rtree import RTree
from repro.rtree.inlj import IndexNestedLoopJoin, index_nested_loop_join

from tests.conftest import random_kpes


class TestCorrectness:
    def test_matches_brute_force(self, small_pair):
        left, right = small_pair
        res = IndexNestedLoopJoin(fanout=16).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_skewed(self, clustered_pair):
        left, right = clustered_pair
        res = IndexNestedLoopJoin(fanout=8).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_empty_inputs(self):
        assert len(IndexNestedLoopJoin().run([], random_kpes(5, 1))) == 0
        assert len(IndexNestedLoopJoin().run(random_kpes(5, 1), [])) == 0

    def test_self_join(self):
        rel = random_kpes(120, 71, max_edge=0.08)
        res = IndexNestedLoopJoin(fanout=16).run(rel, rel)
        assert res.pair_set() == set(brute_force_pairs(rel, rel))

    def test_prebuilt_tree_accepted(self, small_pair):
        left, right = small_pair
        tree = RTree.bulk_load(left, 16)
        res = IndexNestedLoopJoin(fanout=16).run(left, right, tree_left=tree)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_convenience(self, small_pair):
        left, right = small_pair
        res = index_nested_loop_join(left, right, fanout=32)
        assert res.pair_set() == set(brute_force_pairs(left, right))


class TestCosts:
    def test_join_io_charged(self, small_pair):
        left, right = small_pair
        res = IndexNestedLoopJoin(fanout=16).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_JOIN] > 0

    def test_no_build_charge(self, small_pair):
        """The index pre-exists in this class; building is free."""
        left, right = small_pair
        res = IndexNestedLoopJoin(fanout=16).run(left, right)
        assert PHASE_BUILD not in res.stats.io_units_by_phase

    def test_intersection_tests_counted(self, small_pair):
        left, right = small_pair
        res = IndexNestedLoopJoin(fanout=16).run(left, right)
        assert res.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"] > 0
