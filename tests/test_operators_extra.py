"""Tests for the extended operator set and regression pins.

The regression class pins exact deterministic counter values for fixed
seeds: any change to partitioning, sweeping or dedup logic that alters
behaviour (rather than just code shape) trips these immediately.
"""


from repro.core.phases import PHASE_JOIN
from repro.operators import (
    DistinctOp,
    MaterializeOp,
    ProjectOp,
    ScanOp,
    SpatialJoinOp,
    UnionAllOp,
)
from repro.pbsm import PBSM
from repro.s3j import S3J

from tests.conftest import random_kpes


class TestProjectOp:
    def test_maps(self):
        op = ProjectOp(ScanOp([1, 2, 3]), lambda v: v * 10)
        assert list(op) == [10, 20, 30]

    def test_empty(self):
        assert list(ProjectOp(ScanOp([]), str)) == []


class TestDistinctOp:
    def test_drops_duplicates_preserving_order(self):
        op = DistinctOp(ScanOp([3, 1, 3, 2, 1, 4]))
        assert list(op) == [3, 1, 2, 4]

    def test_reopen_resets(self):
        op = DistinctOp(ScanOp([1, 1, 2]))
        assert list(op) == [1, 2]
        assert list(op) == [1, 2]


class TestUnionAllOp:
    def test_concatenates(self):
        op = UnionAllOp(ScanOp([1, 2]), ScanOp([]), ScanOp([3]))
        assert list(op) == [1, 2, 3]

    def test_no_children(self):
        assert list(UnionAllOp()) == []


class TestMaterializeOp:
    def test_same_results(self):
        op = MaterializeOp(ScanOp([5, 6, 7]))
        assert list(op) == [5, 6, 7]

    def test_blocks_on_open(self):
        consumed = []

        class Tracking(ScanOp):
            def next(self):
                item = super().next()
                if item is not None:
                    consumed.append(item)
                return item

        op = MaterializeOp(Tracking([1, 2, 3]))
        op.open()
        assert consumed == [1, 2, 3]  # everything pulled before first next()
        assert op.next() == 1


class TestComposedTrees:
    def test_distinct_over_projected_join(self):
        left = random_kpes(150, 1, max_edge=0.08)
        right = random_kpes(150, 2, start_oid=9_000, max_edge=0.08)
        join = SpatialJoinOp(PBSM(2048), left, right)
        # project to the left oid only, then dedup: "which left objects
        # have at least one partner?"
        tree = DistinctOp(ProjectOp(join, lambda pair: pair[0]))
        lefts = list(tree)
        assert len(lefts) == len(set(lefts))
        from repro.internal import brute_force_pairs

        expected = {a for a, _ in brute_force_pairs(left, right)}
        assert set(lefts) == expected

    def test_union_of_two_joins(self):
        left = random_kpes(80, 3, max_edge=0.1)
        mid = random_kpes(80, 4, start_oid=5_000, max_edge=0.1)
        right = random_kpes(80, 5, start_oid=10_000, max_edge=0.1)
        union = UnionAllOp(
            SpatialJoinOp(PBSM(2048), left, mid),
            SpatialJoinOp(S3J(2048), mid, right),
        )
        rows = list(union)
        from repro.internal import brute_force_pairs

        expected = len(brute_force_pairs(left, mid)) + len(
            brute_force_pairs(mid, right)
        )
        assert len(rows) == expected


class TestRegressionPins:
    """Exact deterministic values for fixed seeds and configurations.

    These intentionally break when behaviour changes; update them only
    after confirming the change is intended (and re-verifying against
    brute force)."""

    def _pair(self):
        return (
            random_kpes(200, 11, max_edge=0.06),
            random_kpes(200, 22, start_oid=10_000, max_edge=0.06),
        )

    def test_pbsm_counters_pinned(self):
        left, right = self._pair()
        res = PBSM(4096, internal="sweep_list", dedup="rpm").run(left, right)
        st = res.stats
        assert st.n_results == 151
        assert st.n_partitions == 3
        assert st.records_partitioned == 454
        assert st.duplicates_suppressed == 9

    def test_s3j_counters_pinned(self):
        left, right = self._pair()
        res = S3J(4096, strategy="size").run(left, right)
        st = res.stats
        assert st.n_results == 151
        assert st.records_partitioned == 980
        assert st.duplicates_suppressed == 126
        assert st.cpu_by_phase[PHASE_JOIN]["intersection_tests"] == 930

    def test_s3j_hybrid_counters_pinned(self):
        left, right = self._pair()
        res = S3J(4096, strategy="hybrid").run(left, right)
        assert res.stats.n_results == 151
        assert 1.0 < res.stats.replication_rate < 2.0
