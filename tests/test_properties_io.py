"""Property and model-based tests for the I/O substrate.

The buffer manager is tested against a reference model (a dict plus an
explicit LRU list) under arbitrary operation sequences; page files and
codecs under arbitrary contents; the external sort under arbitrary
memory budgets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.stats import CpuCounters
from repro.io.buffer import BufferFullError, BufferManager
from repro.io.codec import KpeCodec, LevelEntryCodec, PackedPageFile, PairCodec
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.extsort import external_sort
from repro.io.pagefile import PageFile


class TestBufferModelBased:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["pin", "unpin"]), st.integers(0, 9)),
            max_size=120,
        ),
        st.integers(2, 6),
    )
    def test_against_reference_model(self, operations, n_frames):
        """Drive the buffer with arbitrary pin/unpin sequences and check
        residency/pin counts against an explicit reference model."""
        buf = BufferManager(SimulatedDisk(), n_frames)
        model_pins = {}  # page -> pin count (resident pages only)
        model_lru = []  # unpinned-or-not, residency order

        for op, page in operations:
            if op == "pin":
                expect_full = (
                    page not in model_pins
                    and len(model_pins) >= n_frames
                    and all(c > 0 for c in model_pins.values())
                )
                if expect_full:
                    with pytest.raises(BufferFullError):
                        buf.pin(page)
                    continue
                buf.pin(page)
                if page in model_pins:
                    model_pins[page] += 1
                    model_lru.remove(page)
                    model_lru.append(page)
                else:
                    if len(model_pins) >= n_frames:
                        victim = next(
                            p for p in model_lru if model_pins[p] == 0
                        )
                        model_lru.remove(victim)
                        del model_pins[victim]
                    model_pins[page] = 1
                    model_lru.append(page)
            else:
                if model_pins.get(page, 0) > 0:
                    buf.unpin(page)
                    model_pins[page] -= 1
                else:
                    with pytest.raises(ValueError):
                        buf.unpin(page)

        for page, pins in model_pins.items():
            assert buf.resident(page)
            assert buf.pin_count(page) == pins
        assert buf.n_resident == len(model_pins)


rects = st.builds(
    lambda oid, x1, y1, x2, y2: KPE(
        oid, min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)
    ),
    st.integers(0, 2**31 - 1),
    st.floats(0, 1, allow_nan=False, width=32),
    st.floats(0, 1, allow_nan=False, width=32),
    st.floats(0, 1, allow_nan=False, width=32),
    st.floats(0, 1, allow_nan=False, width=32),
)


class TestCodecProperties:
    @given(rects)
    def test_kpe_codec_roundtrip(self, kpe):
        decoded = KpeCodec.decode(KpeCodec.encode(kpe))
        assert decoded.oid == kpe.oid
        for a, b in zip(decoded[1:], kpe[1:]):
            assert a == pytest.approx(b, abs=1e-6)

    @given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
    def test_pair_codec_roundtrip(self, a, b):
        assert PairCodec.decode(PairCodec.encode((a, b))) == (a, b)

    @given(st.integers(1, 14), st.data())
    def test_level_entry_roundtrip(self, level, data):
        codec = LevelEntryCodec(level)
        code = data.draw(st.integers(0, (1 << (2 * level)) - 1))
        kpe = KPE(5, 0.25, 0.5, 0.75, 1.0)
        got_code, got_kpe = codec.decode(codec.encode((code, kpe)))
        assert got_code == code
        assert got_kpe == kpe

    @given(st.lists(rects, max_size=60), st.integers(40, 400))
    def test_packed_pagefile_roundtrip(self, kpes, page_size):
        disk = SimulatedDisk(CostModel(page_size=page_size))
        f = PackedPageFile(disk, KpeCodec)
        f.append_bulk(kpes)
        decoded = f.read_all()
        assert len(decoded) == len(kpes)
        for got, want in zip(decoded, kpes):
            assert got.oid == want.oid


class TestPageFileProperties:
    @given(st.lists(st.integers(), max_size=300), st.integers(1, 5))
    def test_iter_records_equals_contents(self, values, buffer_pages):
        disk = SimulatedDisk(CostModel(page_size=64))
        f = PageFile(disk, record_bytes=8)
        f.records.extend(values)
        assert list(f.iter_records(buffer_pages)) == values

    @given(st.lists(st.integers(), max_size=200))
    def test_writer_preserves_order(self, values):
        disk = SimulatedDisk(CostModel(page_size=64))
        f = PageFile(disk, record_bytes=8)
        with f.writer(buffer_pages=2) as w:
            w.write_many(values)
        assert f.records == values

    @given(st.lists(st.integers(0, 10_000), max_size=300), st.integers(100, 5_000))
    @settings(max_examples=25)
    def test_external_sort_any_budget(self, values, memory):
        disk = SimulatedDisk(CostModel(page_size=64))
        f = PageFile(disk, record_bytes=8)
        f.records.extend(values)
        out = external_sort(f, lambda v: v, memory, CpuCounters())
        assert out.records == sorted(values)
