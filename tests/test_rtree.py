"""Tests for the R-tree substrate and the synchronized R-tree join."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.phases import PHASE_BUILD, PHASE_JOIN
from repro.core.rect import KPE
from repro.internal import brute_force_pairs
from repro.rtree import RTree, RTreeJoin, rtree_join

from tests.conftest import random_kpes


class TestBulkLoad:
    def test_all_entries_present(self):
        kpes = random_kpes(500, 1)
        tree = RTree.bulk_load(kpes, fanout=16)
        assert tree.size == 500
        assert sorted(k.oid for k in tree.iter_kpes()) == sorted(
            k.oid for k in kpes
        )

    def test_empty(self):
        tree = RTree.bulk_load([], fanout=16)
        assert tree.size == 0
        assert tree.search(0, 0, 1, 1) == []

    def test_fanout_respected(self):
        tree = RTree.bulk_load(random_kpes(300, 2), fanout=8)
        for node in tree.iter_nodes():
            assert len(node.entries) <= 8

    def test_height_logarithmic(self):
        tree = RTree.bulk_load(random_kpes(1000, 3), fanout=10)
        assert 3 <= tree.height() <= 5

    def test_node_mbrs_cover_children(self):
        tree = RTree.bulk_load(random_kpes(400, 4), fanout=16)
        for node in tree.iter_nodes():
            if node.is_leaf:
                for k in node.entries:
                    assert node.xl <= k.xl and k.xh <= node.xh
                    assert node.yl <= k.yl and k.yh <= node.yh
            else:
                for child in node.entries:
                    assert node.xl <= child.xl and child.xh <= node.xh

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            RTree(fanout=2)


class TestInsertion:
    def test_insert_preserves_entries(self):
        tree = RTree(fanout=8)
        kpes = random_kpes(200, 5)
        for k in kpes:
            tree.insert(k)
        assert tree.size == 200
        assert sorted(k.oid for k in tree.iter_kpes()) == sorted(
            k.oid for k in kpes
        )

    def test_insert_fanout_respected(self):
        tree = RTree(fanout=6)
        for k in random_kpes(150, 6):
            tree.insert(k)
        for node in tree.iter_nodes():
            assert len(node.entries) <= 6

    def test_search_after_insert(self):
        tree = RTree(fanout=8)
        kpes = random_kpes(150, 7, max_edge=0.05)
        for k in kpes:
            tree.insert(k)
        found = tree.search(0.3, 0.3, 0.6, 0.6)
        expected = [
            k
            for k in kpes
            if k.xl <= 0.6 and 0.3 <= k.xh and k.yl <= 0.6 and 0.3 <= k.yh
        ]
        assert sorted(k.oid for k in found) == sorted(k.oid for k in expected)


class TestSearch:
    def test_window_query_matches_scan(self):
        kpes = random_kpes(400, 8, max_edge=0.08)
        tree = RTree.bulk_load(kpes, fanout=16)
        for window in [(0, 0, 0.2, 0.2), (0.4, 0.4, 0.6, 0.9), (0, 0, 1, 1)]:
            found = {k.oid for k in tree.search(*window)}
            xl, yl, xh, yh = window
            expected = {
                k.oid
                for k in kpes
                if k.xl <= xh and xl <= k.xh and k.yl <= yh and yl <= k.yh
            }
            assert found == expected

    @given(st.integers(0, 10_000))
    def test_point_queries(self, seed):
        kpes = random_kpes(60, 9, max_edge=0.2)
        tree = RTree.bulk_load(kpes, fanout=8)
        x = (seed % 100) / 100.0
        y = ((seed // 100) % 100) / 100.0
        found = {k.oid for k in tree.search(x, y, x, y)}
        expected = {
            k.oid for k in kpes if k.xl <= x <= k.xh and k.yl <= y <= k.yh
        }
        assert found == expected


class TestRTreeJoin:
    @pytest.mark.parametrize("fanout", [8, 32, 128])
    def test_matches_brute_force(self, fanout, small_pair):
        left, right = small_pair
        res = RTreeJoin(fanout=fanout).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_different_tree_heights(self):
        left = random_kpes(800, 10, max_edge=0.02)
        right = random_kpes(20, 11, start_oid=10_000, max_edge=0.3)
        res = RTreeJoin(fanout=8).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_empty_inputs(self):
        assert len(RTreeJoin().run([], random_kpes(5, 12))) == 0

    def test_prebuilt_trees_reused(self, small_pair):
        left, right = small_pair
        tree_left = RTree.bulk_load(left, 16)
        tree_right = RTree.bulk_load(right, 16)
        joiner = RTreeJoin(fanout=16, prebuilt=True)
        res = joiner.run(left, right, tree_left, tree_right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        # prebuilt: no build-phase write charge
        assert res.stats.io_units_by_phase.get(PHASE_BUILD, 0.0) == 0.0

    def test_build_charged_when_not_prebuilt(self, small_pair):
        left, right = small_pair
        res = RTreeJoin(fanout=16, prebuilt=False).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_BUILD] > 0

    def test_join_io_charged(self, small_pair):
        left, right = small_pair
        res = RTreeJoin(fanout=16).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_JOIN] > 0

    def test_self_join(self):
        rel = random_kpes(150, 13, max_edge=0.08)
        res = RTreeJoin(fanout=16).run(rel, rel)
        assert res.pair_set() == set(brute_force_pairs(rel, rel))

    def test_convenience(self, small_pair):
        left, right = small_pair
        res = rtree_join(left, right, fanout=32)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_identical_rectangles(self):
        left = [KPE(i, 0.4, 0.4, 0.6, 0.6) for i in range(30)]
        right = [KPE(100 + i, 0.5, 0.5, 0.7, 0.7) for i in range(30)]
        res = RTreeJoin(fanout=8).run(left, right)
        assert len(res) == 900
        assert not res.has_duplicates()
