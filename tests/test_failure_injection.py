"""Failure injection and stress: degenerate inputs, hostile budgets.

These target the situations the paper's algorithms must survive rather
than the ones they were designed for: memory too small for any partition
pair, pathological replication, coordinate extremes.
"""


from repro.core.rect import KPE
from repro.internal import brute_force_pairs
from repro.pbsm import PBSM
from repro.s3j import S3J
from repro.sssj import SSSJ

from tests.conftest import random_kpes


class TestHostileMemoryBudgets:
    def test_pbsm_one_byte_pages_worth_of_memory(self):
        left = random_kpes(150, 1, max_edge=0.05)
        right = random_kpes(150, 2, start_oid=9000, max_edge=0.05)
        res = PBSM(64).run(left, right)  # less than four KPEs of memory
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_s3j_tiny_memory(self):
        left = random_kpes(150, 3, max_edge=0.05)
        right = random_kpes(150, 4, start_oid=9000, max_edge=0.05)
        res = S3J(64).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_sssj_tiny_memory(self):
        left = random_kpes(150, 5, max_edge=0.05)
        right = random_kpes(150, 6, start_oid=9000, max_edge=0.05)
        res = SSSJ(128).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_pbsm_depth_limit_terminates(self):
        """Unsplittable partitions (all rectangles identical) must not
        recurse forever."""
        left = [KPE(i, 0.5, 0.5, 0.51, 0.51) for i in range(200)]
        right = [KPE(1000 + i, 0.5, 0.5, 0.51, 0.51) for i in range(200)]
        res = PBSM(256, max_repartition_depth=4).run(left, right)
        assert len(res) == 200 * 200
        assert res.stats.memory_overruns > 0


class TestCoordinateExtremes:
    def test_negative_and_large_coordinates(self):
        left = [KPE(1, -1000.0, -1000.0, -999.0, -999.0), KPE(2, 500.0, 500.0, 501.0, 501.0)]
        right = [KPE(10, -999.5, -999.5, 400.0, 400.0)]
        truth = set(brute_force_pairs(left, right))
        for driver in (PBSM(128), S3J(128), SSSJ(128)):
            assert driver.run(left, right).pair_set() == truth

    def test_all_points(self):
        left = [KPE(i, i * 0.01, i * 0.01, i * 0.01, i * 0.01) for i in range(50)]
        right = [KPE(100 + i, i * 0.01, i * 0.01, i * 0.01, i * 0.01) for i in range(50)]
        truth = set(brute_force_pairs(left, right))
        assert len(truth) == 50
        for driver in (PBSM(128), S3J(128), SSSJ(128)):
            res = driver.run(left, right)
            assert res.pair_set() == truth, res.stats.algorithm
            assert not res.has_duplicates()

    def test_collinear_horizontal_lines(self):
        left = [KPE(i, 0.0, i * 0.02, 1.0, i * 0.02) for i in range(30)]
        right = [KPE(100 + i, 0.0, i * 0.02, 1.0, i * 0.02) for i in range(30)]
        truth = set(brute_force_pairs(left, right))
        for driver in (PBSM(256), S3J(256), SSSJ(256)):
            assert driver.run(left, right).pair_set() == truth

    def test_single_giant_rect_against_many_small(self):
        left = [KPE(1, 0.0, 0.0, 1.0, 1.0)]
        right = random_kpes(300, 7, start_oid=100, max_edge=0.02)
        truth = set(brute_force_pairs(left, right))
        assert len(truth) == 300
        for driver in (PBSM(256), S3J(256), SSSJ(256)):
            res = driver.run(left, right)
            assert res.pair_set() == truth, res.stats.algorithm
            assert not res.has_duplicates()


class TestDuplicateGeometry:
    def test_same_rect_different_oids(self):
        """Distinct objects with identical geometry must each be
        reported; dedup must not merge them."""
        left = [KPE(i, 0.2, 0.2, 0.4, 0.4) for i in range(10)]
        right = [KPE(100, 0.3, 0.3, 0.5, 0.5)]
        for driver in (PBSM(128), S3J(128), SSSJ(128)):
            res = driver.run(left, right)
            assert len(res) == 10, res.stats.algorithm


class TestStatsSanityUnderStress:
    def test_pbsm_stats_consistent(self):
        left = random_kpes(200, 8, max_edge=0.1)
        right = random_kpes(200, 9, start_oid=9000, max_edge=0.1)
        res = PBSM(512).run(left, right)
        st = res.stats
        assert st.n_left == 200 and st.n_right == 200
        assert st.n_results == len(res.pairs)
        assert st.records_partitioned >= 400
        assert st.io_units > 0
        assert st.sim_seconds > 0
        assert all(v >= 0 for v in st.io_units_by_phase.values())

    def test_s3j_stats_consistent(self):
        left = random_kpes(200, 10, max_edge=0.1)
        right = random_kpes(200, 11, start_oid=9000, max_edge=0.1)
        res = S3J(512).run(left, right)
        st = res.stats
        assert st.n_results == len(res.pairs)
        assert 1.0 <= st.replication_rate <= 4.0
        assert st.peak_memory_bytes > 0
