"""Tests for S3J assignment strategies (original / size / hybrid)."""

import pytest

from repro.core.phases import PHASE_JOIN
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.datasets import mixed_scale
from repro.internal import brute_force_pairs
from repro.s3j import S3J
from repro.s3j.levels import (
    ASSIGNMENT_STRATEGIES,
    assign_hybrid,
    assign_original,
    assign_replicated,
)
from repro.sfc.locational import curve_encoder

from tests.conftest import random_kpes

UNIT = Space(0.0, 0.0, 1.0, 1.0)
Z = curve_encoder("peano")
STRATEGIES = sorted(ASSIGNMENT_STRATEGIES)


class TestRegistry:
    def test_names(self):
        assert set(ASSIGNMENT_STRATEGIES) == {"original", "size", "hybrid"}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            S3J(1024, strategy="fractal")

    def test_replicate_flag_maps_to_strategy(self):
        assert S3J(1024, replicate=True).strategy == "size"
        assert S3J(1024, replicate=False).strategy == "original"
        assert S3J(1024, replicate=False, strategy="hybrid").strategy == "hybrid"

    def test_algorithm_labels(self):
        left = random_kpes(20, 1)
        right = random_kpes(20, 2, start_oid=100)
        assert "hybrid" in S3J(1024, strategy="hybrid").run(left, right).stats.algorithm


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestCorrectness:
    def test_matches_brute_force(self, strategy, small_pair):
        left, right = small_pair
        res = S3J(4096, strategy=strategy).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_mixed_scale_workload(self, strategy):
        left = mixed_scale(400, 31)
        right = mixed_scale(400, 32, start_oid=9_000)
        res = S3J(4096, strategy=strategy).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_boundary_straddlers(self, strategy):
        from repro.core.rect import KPE

        eps = 1e-4
        left = [
            KPE(i, 0.5 - eps, i * 0.03, 0.5 + eps, i * 0.03 + eps) for i in range(15)
        ]
        right = [
            KPE(100 + i, 0.5 - eps, i * 0.03, 0.5 + eps, i * 0.03 + eps)
            for i in range(15)
        ]
        res = S3J(4096, strategy=strategy).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()


class TestHybridBehaviour:
    def test_hybrid_replication_between_extremes(self):
        left = random_kpes(600, 33, max_edge=0.05)
        right = random_kpes(600, 34, start_oid=9_000, max_edge=0.05)
        rates = {}
        for strategy in STRATEGIES:
            res = S3J(8192, strategy=strategy).run(left, right)
            rates[strategy] = res.stats.replication_rate
        assert rates["original"] == pytest.approx(1.0)
        assert rates["original"] <= rates["hybrid"] <= rates["size"]

    def test_hybrid_tests_between_extremes(self):
        left = random_kpes(800, 35, max_edge=0.02)
        right = random_kpes(800, 36, start_oid=9_000, max_edge=0.02)
        tests = {}
        for strategy in STRATEGIES:
            res = S3J(8192, strategy=strategy).run(left, right)
            tests[strategy] = res.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"]
        assert tests["size"] <= tests["hybrid"] <= tests["original"]

    def test_hybrid_entry_counts(self):
        kpes = random_kpes(300, 37, max_edge=0.1)
        counters = CpuCounters()
        original = list(assign_original(kpes, UNIT, 8, Z, counters))
        size = list(assign_replicated(kpes, UNIT, 8, Z, counters))
        hybrid = list(assign_hybrid(kpes, UNIT, 8, Z, counters))
        assert len(original) <= len(hybrid) <= len(size)

    def test_hybrid_gap_parameter(self):
        kpes = random_kpes(300, 38, max_edge=0.05)
        counters = CpuCounters()
        tight = list(assign_hybrid(kpes, UNIT, 8, Z, counters, gap=0))
        loose = list(assign_hybrid(kpes, UNIT, 8, Z, counters, gap=6))
        # a larger gap tolerates more straddling -> fewer replicas
        assert len(loose) <= len(tight)
