"""Skewed workloads: stripe splitting stays duplicate-free, byte-identical.

The tentpole claim of the stealing scheduler is that splitting a hot
partition into sweep-axis stripes changes *nothing* about the output:
every stripe pair is owned by exactly one part (the same reference-point
convention RPM uses at partition boundaries, applied at stripe
boundaries), and the ``(pid, part)``-ordered merge reassembles exactly
the sequential sequence.  These tests drive that claim with randomized
Zipf-tile-occupancy workloads — the skew regime the scheduler exists
for — across the executor x transport x scheduler x dedup cross
product: under ``dedup="twolayer"`` splitting slices the mini-join
schedule instead of a single stripe plan, and the charge-once counter
convention for split siblings must still sum to the unsplit totals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.phases import PHASE_JOIN
from repro.datasets.synthetic import zipf_rects
from repro.io.costmodel import mb
from repro.kernels.backend import numpy_enabled
from repro.kernels.shm import shm_enabled
from repro.pbsm import PBSM
from repro.pbsm.parallel import (
    STRIPE_SPLIT_MAX_PARTS,
    STRIPE_SPLIT_MIN_RECORDS,
    ParallelPBSM,
    _split_tasks,
    _task_key,
    _task_size,
)

needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="columnar kernels need numpy"
)
needs_shm = pytest.mark.skipif(
    not shm_enabled(), reason="needs numpy and platform shared memory"
)

MEMORY = mb(0.25)

# Big enough that the hot partition crosses the split floor
# (STRIPE_SPLIT_MIN_RECORDS combined records) and actually stripes.
N_SPLIT = 20_000

LEFT = zipf_rects(N_SPLIT, seed=101)
RIGHT = zipf_rects(N_SPLIT, seed=202, start_oid=10**6)


def run(executor, *, scheduler="stealing", shared_memory=False, workers=2,
        dedup="rpm"):
    join = ParallelPBSM(
        MEMORY,
        workers,
        internal="sweep_numpy",
        executor=executor,
        scheduler=scheduler,
        shared_memory=shared_memory,
        dedup=dedup,
    )
    return join.run(LEFT, RIGHT)


# ----------------------------------------------------------------------
# _split_tasks mechanics
# ----------------------------------------------------------------------
class TestSplitTasks:
    def _record_task(self, pid, n):
        return (pid, [("l",)] * n, [("r",)] * n)

    def test_small_tasks_untouched(self):
        tasks = [self._record_task(pid, 10) for pid in range(5)]
        assert _split_tasks(tasks, 4) == tasks

    def test_hot_task_splits_cold_stay(self):
        hot = self._record_task(0, STRIPE_SPLIT_MIN_RECORDS)
        cold = [self._record_task(pid, 8) for pid in range(1, 6)]
        out = _split_tasks([hot] + cold, 2)
        parts = [t for t in out if _task_key(t)[0] == 0]
        assert len(parts) >= 2
        n_parts = parts[0][-1]
        assert sorted(t[-2] for t in parts) == list(range(n_parts))
        assert all(t[-1] == n_parts for t in parts)
        assert [t for t in out if _task_key(t)[0] != 0] == cold

    def test_lone_hot_task_still_splits_above_floor(self):
        # A single oversized task has nothing to compare against (its
        # own mean), but the absolute floor still splits it.
        hot = self._record_task(0, 50 * STRIPE_SPLIT_MIN_RECORDS)
        cold = [self._record_task(pid, 8) for pid in range(1, 4)]
        out = _split_tasks([hot] + cold, 4)
        parts = [t for t in out if _task_key(t)[0] == 0]
        assert 2 <= len(parts) <= STRIPE_SPLIT_MAX_PARTS

    def test_split_sizes_shrink(self):
        hot = self._record_task(0, STRIPE_SPLIT_MIN_RECORDS)
        cold = [self._record_task(pid, 8) for pid in range(1, 6)]
        base = _task_size(hot)
        for part_task in _split_tasks([hot] + cold, 2):
            if _task_key(part_task)[0] == 0:
                assert _task_size(part_task) < base


# ----------------------------------------------------------------------
# byte-identity under skew, every executor and transport
# ----------------------------------------------------------------------
@needs_numpy
class TestSkewedByteIdentity:
    @pytest.fixture(scope="class")
    def sequential(self):
        return PBSM(MEMORY, internal="sweep_numpy", dedup="rpm").run(LEFT, RIGHT)

    @pytest.fixture(scope="class")
    def simulated(self):
        return run("simulated")

    def test_simulated_matches_sequential_pairs(self, sequential, simulated):
        assert not simulated.has_duplicates()
        assert simulated.pair_set() == sequential.pair_set()

    def test_split_actually_triggered(self):
        # The Zipf workload must cross the stripe-split threshold, or
        # this whole file tests nothing: stripe parts show up as task
        # spans with ``part > 0``.
        from repro.obs import Tracer
        from repro.obs.trace import KIND_TASK

        tracer = Tracer()
        join = ParallelPBSM(
            MEMORY,
            2,
            internal="sweep_numpy",
            executor="simulated",
            scheduler="stealing",
            tracer=tracer,
        )
        join.run(LEFT, RIGHT)
        parts = [
            span.tags.get("part", 0)
            for span in tracer.spans_of_kind(KIND_TASK)
        ]
        assert any(p > 0 for p in parts)

    def test_static_matches_stealing(self, simulated):
        static = run("simulated", scheduler="static")
        assert static.pairs == simulated.pairs
        assert (
            static.stats.duplicates_suppressed
            == simulated.stats.duplicates_suppressed
        )

    @pytest.mark.parametrize(
        "executor,shared_memory",
        [
            ("process", False),
            pytest.param("process", True, marks=needs_shm),
            ("thread", False),
        ],
    )
    def test_executors_byte_identical(self, simulated, executor, shared_memory):
        real = run(executor, shared_memory=shared_memory)
        assert real.pairs == simulated.pairs  # same pairs, same order
        assert not real.has_duplicates()
        assert (
            real.stats.duplicates_suppressed
            == simulated.stats.duplicates_suppressed
        )
        assert real.stats.cpu_by_phase == simulated.stats.cpu_by_phase

    def test_thread_scheduler_stats_populated(self):
        result = run("thread")
        stats = result.stats
        assert stats.executor == "thread"
        assert stats.scheduler == "stealing"
        assert stats.n_workers == 2
        assert 0.0 < stats.worker_utilization <= 1.0


# ----------------------------------------------------------------------
# the same matrix under dedup="twolayer" (corner-class avoidance)
# ----------------------------------------------------------------------
@needs_numpy
class TestTwolayerSkewMatrix:
    """Executor x transport x scheduler, with two-layer duplicate avoidance.

    Splitting a two-layer task slices the flattened mini-join sequence
    (straddling mini-joins continue as forward-scan stripe sub-slices),
    so on top of byte-identity the matrix asserts the scheme's own
    invariants: zero reference-point tests, zero sort removals, and the
    charge-once convention — counters summed over split stripe siblings
    equal the unsplit static run exactly.
    """

    @pytest.fixture(scope="class")
    def twolayer_static(self):
        return run("simulated", scheduler="static", dedup="twolayer")

    def test_pair_set_matches_rpm(self, twolayer_static, sequential_rpm):
        assert not twolayer_static.has_duplicates()
        assert twolayer_static.pair_set() == sequential_rpm.pair_set()

    @pytest.fixture(scope="class")
    def sequential_rpm(self):
        return PBSM(MEMORY, internal="sweep_numpy", dedup="rpm").run(LEFT, RIGHT)

    def test_zero_dedup_work(self, twolayer_static):
        join_cpu = twolayer_static.stats.cpu_by_phase[PHASE_JOIN]
        assert join_cpu["refpoint_tests"] == 0
        assert twolayer_static.stats.duplicates_suppressed == 0
        assert twolayer_static.stats.duplicates_sorted_out == 0

    def test_split_actually_triggered(self):
        from repro.obs import Tracer
        from repro.obs.trace import KIND_TASK

        tracer = Tracer()
        join = ParallelPBSM(
            MEMORY,
            2,
            internal="sweep_numpy",
            executor="simulated",
            scheduler="stealing",
            dedup="twolayer",
            tracer=tracer,
        )
        join.run(LEFT, RIGHT)
        parts = [
            span.tags.get("part", 0)
            for span in tracer.spans_of_kind(KIND_TASK)
        ]
        assert any(p > 0 for p in parts)

    @pytest.mark.parametrize("scheduler", ["static", "stealing"])
    @pytest.mark.parametrize(
        "executor,shared_memory",
        [
            ("simulated", False),
            ("process", False),
            pytest.param("process", True, marks=needs_shm),
            ("thread", False),
        ],
    )
    def test_matrix_byte_identical(
        self, twolayer_static, executor, shared_memory, scheduler
    ):
        real = run(
            executor,
            scheduler=scheduler,
            shared_memory=shared_memory,
            dedup="twolayer",
        )
        assert real.pairs == twolayer_static.pairs  # same pairs, same order
        assert not real.has_duplicates()
        # Charge-once: split stripe siblings (stealing) must sum to the
        # unsplit (static) counter totals, on every executor/transport.
        assert real.stats.cpu_by_phase == twolayer_static.stats.cpu_by_phase


# ----------------------------------------------------------------------
# randomized property: duplicate-freedom survives any Zipf workload
# ----------------------------------------------------------------------
@needs_numpy
class TestZipfProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        alpha=st.floats(min_value=0.8, max_value=2.0),
        n=st.integers(min_value=2_000, max_value=9_000),
        workers=st.integers(min_value=2, max_value=4),
        dedup=st.sampled_from(("rpm", "twolayer")),
    )
    def test_stealing_parallel_equals_sequential(
        self, seed, alpha, n, workers, dedup
    ):
        left = zipf_rects(n, seed=seed, alpha=alpha)
        right = zipf_rects(n, seed=seed + 1, alpha=alpha, start_oid=10**6)
        seq = PBSM(MEMORY, internal="sweep_numpy", dedup="rpm").run(left, right)
        par = ParallelPBSM(
            MEMORY,
            workers,
            internal="sweep_numpy",
            executor="simulated",
            scheduler="stealing",
            dedup=dedup,
        ).run(left, right)
        assert not par.has_duplicates()
        assert par.pair_set() == seq.pair_set()
        assert len(par.pairs) == len(seq.pairs)
