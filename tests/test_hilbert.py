"""Unit and property tests for the Hilbert curve."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sfc.hilbert import hilbert_decode, hilbert_encode


class TestHilbertBasics:
    def test_level1_order(self):
        # The order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
        visits = [hilbert_decode(d, 1) for d in range(4)]
        assert visits == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_encode(4, 0, 2)
        with pytest.raises(ValueError):
            hilbert_decode(-1, 2)

    def test_order2_is_a_tour(self):
        """Consecutive codes map to 4-adjacent cells (the curve is
        continuous)."""
        cells = [hilbert_decode(d, 2) for d in range(16)]
        for (x1, y1), (x2, y2) in zip(cells, cells[1:]):
            assert abs(x1 - x2) + abs(y1 - y2) == 1


@st.composite
def coords_with_bits(draw):
    bits = draw(st.integers(1, 16))
    ix = draw(st.integers(0, (1 << bits) - 1))
    iy = draw(st.integers(0, (1 << bits) - 1))
    return ix, iy, bits


class TestHilbertProperties:
    @given(coords_with_bits())
    def test_roundtrip(self, args):
        ix, iy, bits = args
        assert hilbert_decode(hilbert_encode(ix, iy, bits), bits) == (ix, iy)

    @given(coords_with_bits())
    def test_code_in_range(self, args):
        ix, iy, bits = args
        assert 0 <= hilbert_encode(ix, iy, bits) < (1 << (2 * bits))

    @given(coords_with_bits())
    def test_hierarchical_prefix(self, args):
        """Self-similarity: the level-(k-1) code of the parent cell equals
        the level-k code shifted by two bits.  S3J's ancestor logic needs
        this for Hilbert codes just as for Z codes."""
        ix, iy, bits = args
        if bits < 2:
            return
        assert (
            hilbert_encode(ix >> 1, iy >> 1, bits - 1)
            == hilbert_encode(ix, iy, bits) >> 2
        )

    @given(st.integers(1, 5))
    def test_bijective_per_level(self, bits):
        n = 1 << bits
        codes = {hilbert_encode(x, y, bits) for x in range(n) for y in range(n)}
        assert codes == set(range(n * n))

    @given(st.integers(2, 6))
    def test_continuity_everywhere(self, bits):
        n = 1 << bits
        previous = hilbert_decode(0, bits)
        for d in range(1, min(n * n, 256)):
            current = hilbert_decode(d, bits)
            assert (
                abs(previous[0] - current[0]) + abs(previous[1] - current[1]) == 1
            )
            previous = current
