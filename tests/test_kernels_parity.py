"""Parity tests: the columnar kernel against the scalar algorithms.

The kernel path must be invisible in the results: for any input,
``sweep_numpy`` (vectorized, y-striped), ``sweep_list`` (scalar) and the
brute-force reference produce the same pair set, and the batched RPM
filter owns every pair in exactly one partition — including reference
points sitting exactly on tile boundaries, where a float discrepancy
between scalar and vectorized tile arithmetic would silently drop or
duplicate pairs.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import INTERNAL_ALGORITHMS, brute_force_pairs
from repro.kernels.backend import HAVE_NUMPY, python_backend
from repro.kernels.rpm import (
    _python_rpm_join_task,
    point_tiles,
    rpm_join_task,
    tile_partitions,
)
from repro.kernels.sweep import STRIPE_MIN_RECORDS
from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y, TileGrid

from tests.conftest import random_kpes

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def run(name, left, right):
    counters = CpuCounters()
    pairs = []
    INTERNAL_ALGORITHMS[name](
        left, right, lambda r, s: pairs.append((r[0], s[0])), counters
    )
    return pairs


def make_inputs(kind, n, seed, start_oid=0):
    """Seeded workloads covering the distributions the paper varies."""
    from repro.datasets import clustered_rects, uniform_rects
    from repro.datasets.patterns import mixed_scale

    if kind == "uniform":
        return uniform_rects(n, seed=seed, start_oid=start_oid, mean_edge=0.01)
    if kind == "clustered":
        return clustered_rects(n, seed=seed, start_oid=start_oid)
    # Heavy-tailed extents: a few huge rectangles over many small ones —
    # the case that stresses both striping replication and the sweep's
    # active list.
    return mixed_scale(n, seed=seed, start_oid=start_oid)


@needs_numpy
@pytest.mark.parametrize("kind", ["uniform", "clustered", "skewed"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seeded_distributions_match(kind, seed):
    left = make_inputs(kind, 400, seed=seed)
    right = make_inputs(kind, 400, seed=seed + 100, start_oid=10**6)
    truth = sorted(brute_force_pairs(left, right))
    assert sorted(run("sweep_numpy", left, right)) == truth
    assert sorted(run("sweep_list", left, right)) == truth


@needs_numpy
@pytest.mark.parametrize("kind", ["uniform", "clustered"])
def test_striped_regime_matches_list_sweep(kind):
    # Inputs large enough that the kernel's y-striping engages.
    n = STRIPE_MIN_RECORDS
    left = make_inputs(kind, n, seed=7)
    right = make_inputs(kind, n, seed=8, start_oid=10**6)
    assert sorted(run("sweep_numpy", left, right)) == sorted(
        run("sweep_list", left, right)
    )


def test_python_fallback_matches_list_sweep():
    left = random_kpes(300, seed=17, max_edge=0.08)
    right = random_kpes(300, seed=18, start_oid=10**4, max_edge=0.08)
    with python_backend():
        got = run("sweep_numpy", left, right)
    assert sorted(got) == sorted(run("sweep_list", left, right))


@needs_numpy
def test_touch_only_rectangles_count():
    # Shared edges and corners intersect (closed rectangles); the
    # searchsorted sides must treat the boundaries inclusively.
    left = [
        KPE(1, 0.0, 0.0, 0.5, 0.5),
        KPE(2, 0.5, 0.5, 1.0, 1.0),
        KPE(3, 0.25, 0.25, 0.25, 0.75),  # vertical segment
    ]
    right = [
        KPE(10, 0.5, 0.0, 1.0, 0.5),    # shares the corner (0.5, 0.5) w/ 1
        KPE(11, 0.0, 0.5, 0.5, 1.0),    # shares edges with 1 and 2
        KPE(12, 0.25, 0.5, 0.75, 0.5),  # touches 3 at a single point
    ]
    truth = sorted(brute_force_pairs(left, right))
    assert sorted(run("sweep_numpy", left, right)) == truth
    with python_backend():
        assert sorted(run("sweep_numpy", left, right)) == truth


@st.composite
def touching_kpes(draw):
    """Coordinates from a tiny lattice, so shared edges/corners abound."""
    lattice = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])

    def rect(oid):
        x1, x2 = sorted((draw(lattice), draw(lattice)))
        y1, y2 = sorted((draw(lattice), draw(lattice)))
        return KPE(oid, x1, y1, x2, y2)

    left = [rect(i) for i in range(draw(st.integers(0, 12)))]
    right = [rect(1000 + i) for i in range(draw(st.integers(0, 12)))]
    return left, right


@needs_numpy
@given(touching_kpes())
def test_property_lattice_parity(pair):
    left, right = pair
    truth = sorted(brute_force_pairs(left, right))
    assert sorted(run("sweep_numpy", left, right)) == truth
    assert sorted(run("sweep_list", left, right)) == truth


# ----------------------------------------------------------------------
# batched RPM vs scalar RPM, tile-boundary reference points included
# ----------------------------------------------------------------------
def rpm_grid():
    return TileGrid(Space(0.0, 0.0, 1.0, 1.0), 4, 4, 4, mapping="hash")


def boundary_rects(start_oid):
    """Rectangles engineered so reference points hit tile boundaries.

    With a 4x4 grid over the unit square, tile edges sit at multiples of
    0.25; ``max(xl)``/``min(yh)`` of these rectangles land exactly there.
    """
    coords = [0.0, 0.25, 0.5, 0.75]
    out = []
    oid = start_oid
    for x in coords:
        for y in coords:
            out.append(KPE(oid, x, y, x + 0.25, y + 0.25))
            oid += 1
            out.append(KPE(oid, x + 0.1, y + 0.1, x + 0.25, y + 0.25))
            oid += 1
    return out


@needs_numpy
class TestBatchedRPM:
    def test_tile_boundary_ownership_matches_scalar(self):
        grid = rpm_grid()
        left = boundary_rects(0)
        right = boundary_rects(1000)
        for pid in range(grid.n_partitions):
            got, got_sup = rpm_join_task(
                left, right, grid, pid, CpuCounters()
            )
            want, want_sup = _python_rpm_join_task(
                left, right, grid, pid, CpuCounters()
            )
            assert sorted(got) == sorted(want)
            assert got_sup == want_sup

    def test_each_pair_owned_exactly_once(self):
        grid = rpm_grid()
        left = boundary_rects(0) + random_kpes(60, seed=3, max_edge=0.3)
        right = boundary_rects(1000) + random_kpes(
            60, seed=4, start_oid=5000, max_edge=0.3
        )
        truth = sorted(brute_force_pairs(left, right))
        owned = []
        for pid in range(grid.n_partitions):
            pairs, _ = rpm_join_task(left, right, grid, pid, CpuCounters())
            owned.extend(pairs)
        assert sorted(owned) == truth  # no pair missed, none duplicated

    def test_batched_matches_scalar_on_random_input(self):
        grid = rpm_grid()
        left = random_kpes(150, seed=5, max_edge=0.2)
        right = random_kpes(150, seed=6, start_oid=5000, max_edge=0.2)
        for pid in range(grid.n_partitions):
            got, got_sup = rpm_join_task(left, right, grid, pid, CpuCounters())
            want, want_sup = _python_rpm_join_task(
                left, right, grid, pid, CpuCounters()
            )
            assert sorted(got) == sorted(want)
            assert got_sup == want_sup


# ----------------------------------------------------------------------
# vectorized tile arithmetic vs TileGrid, point by point
# ----------------------------------------------------------------------
def adversarial_points(grid):
    """Points engineered to disagree under sloppy tile arithmetic.

    Every interior tile edge, every tile corner, the space border (where
    the scalar path clamps ``tx == nx`` back to ``nx - 1``), points
    epsilon-close to an edge on either side, and points outside the space
    entirely (both paths must clamp them to the border tiles).
    """
    import itertools

    space = grid.space
    xs = {space.xl + space.width * i / grid.nx for i in range(grid.nx + 1)}
    ys = {space.yl + space.height * j / grid.ny for j in range(grid.ny + 1)}
    eps = 1e-12
    xs |= {x + d for x in list(xs) for d in (-eps, eps)}
    ys |= {y + d for y in list(ys) for d in (-eps, eps)}
    # Far outside the space, so the int64 cast sees negative / >= n values.
    xs |= {space.xl - 0.5, space.xh + 0.5}
    ys |= {space.yl - 0.5, space.yh + 0.5}
    return list(itertools.product(sorted(xs), sorted(ys)))


@needs_numpy
class TestGridKernelParity:
    """Pin ``point_tiles``/``tile_partitions`` to the scalar ``TileGrid``."""

    GRIDS = [
        TileGrid(Space(0.0, 0.0, 1.0, 1.0), 4, 4, 4, mapping="hash"),
        TileGrid(Space(0.0, 0.0, 1.0, 1.0), 4, 4, 4, mapping="round_robin"),
        # Non-square grid over a non-unit, offset space: norm_x/norm_y
        # scaling and the row-major round-robin index diverge from the
        # square case if either side hardcodes symmetry.
        TileGrid(Space(-2.0, 1.0, 6.0, 3.0), 5, 3, 7, mapping="hash"),
        TileGrid(Space(-2.0, 1.0, 6.0, 3.0), 5, 3, 7, mapping="round_robin"),
    ]

    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.nx}x{g.ny}-{g.mapping}")
    def test_boundary_points_tile_and_partition_parity(self, grid):
        import numpy as np

        points = adversarial_points(grid)
        x = np.array([p[0] for p in points])
        y = np.array([p[1] for p in points])
        tx, ty = point_tiles(np, grid, x, y)
        owner = tile_partitions(np, grid, tx, ty)
        for i, (px, py) in enumerate(points):
            want_tile = grid.tile_of_point(px, py)
            assert (int(tx[i]), int(ty[i])) == want_tile, (px, py)
            assert int(owner[i]) == grid.partition_of_point(px, py), (px, py)

    def test_hash_constants_single_source(self):
        # The kernel replays the scalar hash; both must read the shared
        # constants, and those must be the documented odd multipliers.
        import repro.kernels.rpm as rpm_mod
        import repro.pbsm.grid as grid_mod

        # This is the single sanctioned restatement of the multiplier
        # values: the test that pins them.
        assert (TILE_HASH_X, TILE_HASH_Y) == (73856093, 19349663)  # repro-lint: disable=RPL003
        assert rpm_mod.TILE_HASH_X is grid_mod.TILE_HASH_X
        assert rpm_mod.TILE_HASH_Y is grid_mod.TILE_HASH_Y

    def test_partition_of_tile_uses_shared_constants(self):
        # Guards against either side drifting back to inline literals:
        # recompute the mapping from the shared constants directly.
        import numpy as np

        grid = TileGrid(Space(0.0, 0.0, 1.0, 1.0), 8, 8, 5, mapping="hash")
        for tx in range(grid.nx):
            for ty in range(grid.ny):
                want = ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % grid.n_partitions  # repro-lint: disable=RPL003
                assert grid.partition_of_tile(tx, ty) == want
        txs = np.arange(grid.nx).repeat(grid.ny)
        tys = np.tile(np.arange(grid.ny), grid.nx)
        owners = tile_partitions(np, grid, txs, tys)
        for tx, ty, got in zip(txs.tolist(), tys.tolist(), owners.tolist()):
            assert got == grid.partition_of_tile(tx, ty)
