"""Parity tests: the columnar kernel against the scalar algorithms.

The kernel path must be invisible in the results: for any input,
``sweep_numpy`` (vectorized, y-striped), ``sweep_list`` (scalar) and the
brute-force reference produce the same pair set, and the batched RPM
filter owns every pair in exactly one partition — including reference
points sitting exactly on tile boundaries, where a float discrepancy
between scalar and vectorized tile arithmetic would silently drop or
duplicate pairs.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import INTERNAL_ALGORITHMS, brute_force_pairs
from repro.kernels.backend import HAVE_NUMPY, python_backend
from repro.kernels.rpm import _python_rpm_join_task, rpm_join_task
from repro.kernels.sweep import STRIPE_MIN_RECORDS
from repro.pbsm.grid import TileGrid

from tests.conftest import random_kpes

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def run(name, left, right):
    counters = CpuCounters()
    pairs = []
    INTERNAL_ALGORITHMS[name](
        left, right, lambda r, s: pairs.append((r[0], s[0])), counters
    )
    return pairs


def make_inputs(kind, n, seed, start_oid=0):
    """Seeded workloads covering the distributions the paper varies."""
    from repro.datasets import clustered_rects, uniform_rects
    from repro.datasets.patterns import mixed_scale

    if kind == "uniform":
        return uniform_rects(n, seed=seed, start_oid=start_oid, mean_edge=0.01)
    if kind == "clustered":
        return clustered_rects(n, seed=seed, start_oid=start_oid)
    # Heavy-tailed extents: a few huge rectangles over many small ones —
    # the case that stresses both striping replication and the sweep's
    # active list.
    return mixed_scale(n, seed=seed, start_oid=start_oid)


@needs_numpy
@pytest.mark.parametrize("kind", ["uniform", "clustered", "skewed"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seeded_distributions_match(kind, seed):
    left = make_inputs(kind, 400, seed=seed)
    right = make_inputs(kind, 400, seed=seed + 100, start_oid=10**6)
    truth = sorted(brute_force_pairs(left, right))
    assert sorted(run("sweep_numpy", left, right)) == truth
    assert sorted(run("sweep_list", left, right)) == truth


@needs_numpy
@pytest.mark.parametrize("kind", ["uniform", "clustered"])
def test_striped_regime_matches_list_sweep(kind):
    # Inputs large enough that the kernel's y-striping engages.
    n = STRIPE_MIN_RECORDS
    left = make_inputs(kind, n, seed=7)
    right = make_inputs(kind, n, seed=8, start_oid=10**6)
    assert sorted(run("sweep_numpy", left, right)) == sorted(
        run("sweep_list", left, right)
    )


def test_python_fallback_matches_list_sweep():
    left = random_kpes(300, seed=17, max_edge=0.08)
    right = random_kpes(300, seed=18, start_oid=10**4, max_edge=0.08)
    with python_backend():
        got = run("sweep_numpy", left, right)
    assert sorted(got) == sorted(run("sweep_list", left, right))


@needs_numpy
def test_touch_only_rectangles_count():
    # Shared edges and corners intersect (closed rectangles); the
    # searchsorted sides must treat the boundaries inclusively.
    left = [
        KPE(1, 0.0, 0.0, 0.5, 0.5),
        KPE(2, 0.5, 0.5, 1.0, 1.0),
        KPE(3, 0.25, 0.25, 0.25, 0.75),  # vertical segment
    ]
    right = [
        KPE(10, 0.5, 0.0, 1.0, 0.5),    # shares the corner (0.5, 0.5) w/ 1
        KPE(11, 0.0, 0.5, 0.5, 1.0),    # shares edges with 1 and 2
        KPE(12, 0.25, 0.5, 0.75, 0.5),  # touches 3 at a single point
    ]
    truth = sorted(brute_force_pairs(left, right))
    assert sorted(run("sweep_numpy", left, right)) == truth
    with python_backend():
        assert sorted(run("sweep_numpy", left, right)) == truth


@st.composite
def touching_kpes(draw):
    """Coordinates from a tiny lattice, so shared edges/corners abound."""
    lattice = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])

    def rect(oid):
        x1, x2 = sorted((draw(lattice), draw(lattice)))
        y1, y2 = sorted((draw(lattice), draw(lattice)))
        return KPE(oid, x1, y1, x2, y2)

    left = [rect(i) for i in range(draw(st.integers(0, 12)))]
    right = [rect(1000 + i) for i in range(draw(st.integers(0, 12)))]
    return left, right


@needs_numpy
@given(touching_kpes())
def test_property_lattice_parity(pair):
    left, right = pair
    truth = sorted(brute_force_pairs(left, right))
    assert sorted(run("sweep_numpy", left, right)) == truth
    assert sorted(run("sweep_list", left, right)) == truth


# ----------------------------------------------------------------------
# batched RPM vs scalar RPM, tile-boundary reference points included
# ----------------------------------------------------------------------
def rpm_grid():
    return TileGrid(Space(0.0, 0.0, 1.0, 1.0), 4, 4, 4, mapping="hash")


def boundary_rects(start_oid):
    """Rectangles engineered so reference points hit tile boundaries.

    With a 4x4 grid over the unit square, tile edges sit at multiples of
    0.25; ``max(xl)``/``min(yh)`` of these rectangles land exactly there.
    """
    coords = [0.0, 0.25, 0.5, 0.75]
    out = []
    oid = start_oid
    for x in coords:
        for y in coords:
            out.append(KPE(oid, x, y, x + 0.25, y + 0.25))
            oid += 1
            out.append(KPE(oid, x + 0.1, y + 0.1, x + 0.25, y + 0.25))
            oid += 1
    return out


@needs_numpy
class TestBatchedRPM:
    def test_tile_boundary_ownership_matches_scalar(self):
        grid = rpm_grid()
        left = boundary_rects(0)
        right = boundary_rects(1000)
        for pid in range(grid.n_partitions):
            got, got_sup = rpm_join_task(
                left, right, grid, pid, CpuCounters()
            )
            want, want_sup = _python_rpm_join_task(
                left, right, grid, pid, CpuCounters()
            )
            assert sorted(got) == sorted(want)
            assert got_sup == want_sup

    def test_each_pair_owned_exactly_once(self):
        grid = rpm_grid()
        left = boundary_rects(0) + random_kpes(60, seed=3, max_edge=0.3)
        right = boundary_rects(1000) + random_kpes(
            60, seed=4, start_oid=5000, max_edge=0.3
        )
        truth = sorted(brute_force_pairs(left, right))
        owned = []
        for pid in range(grid.n_partitions):
            pairs, _ = rpm_join_task(left, right, grid, pid, CpuCounters())
            owned.extend(pairs)
        assert sorted(owned) == truth  # no pair missed, none duplicated

    def test_batched_matches_scalar_on_random_input(self):
        grid = rpm_grid()
        left = random_kpes(150, seed=5, max_edge=0.2)
        right = random_kpes(150, seed=6, start_oid=5000, max_edge=0.2)
        for pid in range(grid.n_partitions):
            got, got_sup = rpm_join_task(left, right, grid, pid, CpuCounters())
            want, want_sup = _python_rpm_join_task(
                left, right, grid, pid, CpuCounters()
            )
            assert sorted(got) == sorted(want)
            assert got_sup == want_sup
