"""The ``.rcd`` persistent columnar format and its mapped stores.

Covers the format robustness contract (corrupt/truncated/mismatched
headers rejected with clear errors, read-only mapping semantics, numpy
and struct writers byte-identical), the zero-copy open path
(``MappedRelation`` as a drop-in relation sequence, stored fingerprints
hitting the planner caches), and end-to-end join byte-identity from
mapped stores across the sequential and parallel (shm) engines.
"""

import struct

import pytest

from repro import spatial_join
from repro.core.rect import KPE
from repro.datasets import clustered_rects, uniform_rects
from repro.datasets.fileio import load_relation, save_relation
from repro.io.costmodel import CostModel, mb
from repro.io.rcd import (
    RCD_HEADER_BYTES,
    RCD_MAGIC,
    RcdFormatError,
    pack_header,
    read_header,
    read_rcd_python,
    write_rcd_python,
)
from repro.kernels.backend import numpy_enabled, python_backend

needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="mapped stores need numpy"
)


@pytest.fixture
def rcd_path(tmp_path):
    kpes = uniform_rects(2000, seed=11)
    path = tmp_path / "u.rcd"
    save_relation(kpes, path)
    return kpes, path


# ----------------------------------------------------------------------
# format robustness
# ----------------------------------------------------------------------
class TestFormatRobustness:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rcd"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * RCD_HEADER_BYTES)
        with pytest.raises(RcdFormatError, match="bad magic"):
            load_relation(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.rcd"
        path.write_bytes(RCD_MAGIC + b"\x00" * 4)
        with pytest.raises(RcdFormatError, match="truncated header"):
            read_header(path)

    def test_truncated_column_data_rejected(self, rcd_path, tmp_path):
        _, path = rcd_path
        clipped = tmp_path / "clipped.rcd"
        blob = path.read_bytes()
        clipped.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(RcdFormatError, match="truncated column data"):
            load_relation(clipped)

    def test_version_mismatch_rejected(self, rcd_path, tmp_path):
        _, path = rcd_path
        blob = bytearray(path.read_bytes())
        # version lives right after the 8-byte magic, little-endian u16
        struct.pack_into("<H", blob, 8, 99)
        future = tmp_path / "future.rcd"
        future.write_bytes(bytes(blob))
        with pytest.raises(RcdFormatError, match="version 99 is not supported"):
            load_relation(future)

    def test_corrupt_fingerprint_rejected(self, rcd_path, tmp_path):
        _, path = rcd_path
        blob = bytearray(path.read_bytes())
        header = read_header(path)
        assert header.fingerprint in bytes(blob[:RCD_HEADER_BYTES]).decode(
            "ascii", "replace"
        )
        offset = bytes(blob).index(header.fingerprint.encode("ascii"))
        blob[offset : offset + 4] = b"zzzz"
        bad = tmp_path / "badfp.rcd"
        bad.write_bytes(bytes(blob))
        with pytest.raises(RcdFormatError, match="corrupt content fingerprint"):
            read_header(bad)

    def test_invalid_mbr_rejected_at_build(self, tmp_path):
        inverted = [KPE(1, 0.5, 0.5, 0.1, 0.6)]  # xh < xl
        with pytest.raises(ValueError, match="invalid MBR"):
            save_relation(inverted, tmp_path / "inv.rcd")
        with pytest.raises(ValueError, match="invalid MBR"):
            write_rcd_python(inverted, tmp_path / "inv2.rcd")

    def test_header_roundtrip_and_extent(self, rcd_path):
        kpes, path = rcd_path
        header = read_header(path)
        assert header.n == len(kpes)
        assert header.extent == (
            min(k[1] for k in kpes),
            min(k[2] for k in kpes),
            max(k[3] for k in kpes),
            max(k[4] for k in kpes),
        )
        assert len(header.fingerprint) == 32

    def test_pack_header_rejects_bad_fingerprint(self):
        with pytest.raises(ValueError, match="32 hex chars"):
            pack_header(1, (0.0, 0.0, 1.0, 1.0), "abc", False)


# ----------------------------------------------------------------------
# struct fallback vs numpy writer/reader
# ----------------------------------------------------------------------
class TestBackendParity:
    @needs_numpy
    def test_writers_byte_identical(self, tmp_path):
        kpes = clustered_rects(1500, seed=3)
        a = tmp_path / "numpy.rcd"
        b = tmp_path / "struct.rcd"
        save_relation(kpes, a)
        write_rcd_python(kpes, b)
        assert a.read_bytes() == b.read_bytes()

    def test_python_reader_roundtrip(self, tmp_path):
        kpes = uniform_rects(500, seed=4)
        path = tmp_path / "p.rcd"
        write_rcd_python(kpes, path)
        assert read_rcd_python(path) == list(kpes)

    @needs_numpy
    def test_no_numpy_fallback_matches_mapped_read(self, rcd_path):
        kpes, path = rcd_path
        mapped = load_relation(path)
        assert getattr(mapped, "mapped", False)
        with python_backend():
            fallback = load_relation(path)
        assert isinstance(fallback, list)
        assert fallback == list(mapped) == list(kpes)

    def test_no_numpy_build_roundtrip(self, tmp_path):
        kpes = uniform_rects(400, seed=9)
        path = tmp_path / "nn.rcd"
        with python_backend():
            save_relation(kpes, path)
            back = load_relation(path)
        assert back == list(kpes)


# ----------------------------------------------------------------------
# mapped store semantics
# ----------------------------------------------------------------------
@needs_numpy
class TestMappedStore:
    def test_read_only_mapping_writes_fail_loudly(self, rcd_path):
        from repro.kernels.mmapstore import MappedColumnarStore

        _, path = rcd_path
        with MappedColumnarStore.open(path) as store:
            rel = store.relation()
            with pytest.raises(ValueError):
                rel.xl[0] = 99.0
            with pytest.raises(ValueError):
                store.column("oid")[0] = -1

    def test_closed_store_refuses_views(self, rcd_path):
        from repro.kernels.mmapstore import MappedColumnarStore

        _, path = rcd_path
        store = MappedColumnarStore.open(path)
        store.close()
        assert store.closed
        with pytest.raises(ValueError, match="closed"):
            store.relation()

    def test_mapped_relation_is_a_sequence(self, rcd_path):
        kpes, path = rcd_path
        rel = load_relation(path)
        assert len(rel) == len(kpes)
        assert rel[0] == kpes[0]
        assert rel[-1] == kpes[-1]
        assert rel[5:10] == list(kpes[5:10])
        assert rel[::97] == list(kpes[::97])
        assert list(rel) == list(kpes)
        assert rel.to_kpes() == list(kpes)

    def test_sorted_flag_detected(self, tmp_path):
        kpes = sorted(uniform_rects(300, seed=2), key=lambda k: k[1])
        path = tmp_path / "sorted.rcd"
        save_relation(kpes, path)
        rel = load_relation(path)
        assert rel.sorted_by_xl
        assert rel.columnar.sorted_by_xl

    def test_from_kpes_short_circuits_to_mapped_columns(self, rcd_path):
        from repro.kernels.columnar import ColumnarRelation

        _, path = rcd_path
        rel = load_relation(path)
        assert ColumnarRelation.from_kpes(rel) is rel.columnar

    def test_empty_relation_roundtrip(self, tmp_path):
        path = tmp_path / "empty.rcd"
        save_relation([], path)
        rel = load_relation(path)
        assert len(rel) == 0
        assert list(rel) == []


# ----------------------------------------------------------------------
# planner integration
# ----------------------------------------------------------------------
@needs_numpy
class TestPlannerIntegration:
    def test_stored_fingerprint_matches_in_memory(self, rcd_path):
        from repro.planner.stats import relation_fingerprint

        kpes, path = rcd_path
        rel = load_relation(path)
        assert (
            relation_fingerprint(rel)
            == rel.fingerprint
            == relation_fingerprint(list(kpes))
        )

    def test_plan_cache_hits_across_representations(self, rcd_path):
        from repro.planner import plan_join
        from repro.planner.cache import PlannerCache

        kpes, path = rcd_path
        rel = load_relation(path)
        cache = PlannerCache()
        first = plan_join(rel, rel, mb(2.5), cache=cache)
        assert not first.from_cache
        again = plan_join(list(kpes), list(kpes), mb(2.5), cache=cache)
        assert again.from_cache

    def test_explain_prices_mapped_ingest(self, rcd_path):
        from repro.planner import plan_join

        kpes, path = rcd_path
        rel = load_relation(path)
        mapped_plan = plan_join(rel, rel, mb(2.5))
        assert "mapped open" in mapped_plan.explain()
        assert "re-parse would be" in mapped_plan.explain()
        parsed_plan = plan_join(list(kpes), list(kpes), mb(2.5))
        assert "mapped open" not in parsed_plan.explain()

    def test_cost_model_ingest_amortization(self):
        cost = CostModel()
        n = 1_000_000
        assert cost.ingest_seconds(n, mapped=True) == cost.mmap_open_seconds
        assert cost.ingest_seconds(n, mapped=False) == pytest.approx(
            n * cost.parse_record_seconds
        )
        assert cost.ingest_seconds(n, mapped=False) > 100 * cost.ingest_seconds(
            n, mapped=True
        )


# ----------------------------------------------------------------------
# join byte-identity from mapped stores
# ----------------------------------------------------------------------
@needs_numpy
class TestJoinIdentity:
    def test_sequential_join_identical(self, rcd_path):
        kpes, path = rcd_path
        rel = load_relation(path)
        memory = spatial_join(list(kpes), list(kpes), mb(2.5), method="pbsm")
        mapped = spatial_join(rel, rel, mb(2.5), method="pbsm")
        assert mapped.pairs == memory.pairs

    def test_parallel_shm_join_identical(self, rcd_path):
        kpes, path = rcd_path
        rel = load_relation(path)
        memory = spatial_join(
            list(kpes),
            list(kpes),
            mb(2.5),
            method="pbsm",
            workers=2,
            shared_memory=True,
        )
        mapped = spatial_join(
            rel, rel, mb(2.5), method="pbsm", workers=2, shared_memory=True
        )
        assert mapped.pairs == memory.pairs

    def test_registry_pins_mapped_dataset_lazily(self, rcd_path):
        from repro.kernels.mmapstore import MappedRelation
        from repro.serve import DatasetRegistry

        _, path = rcd_path
        registry = DatasetRegistry(pin=True)
        try:
            entry = registry.register_file("u", str(path))
            # the registry must NOT listify (re-parse) the mapping
            assert isinstance(entry.kpes, MappedRelation)
            assert entry.n == len(entry.kpes)
        finally:
            registry.close()


# ----------------------------------------------------------------------
# CLI build subcommand
# ----------------------------------------------------------------------
class TestCliBuild:
    def test_build_from_pattern_then_join(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli.rcd"
        assert main(
            ["build", str(out), "--pattern", "uniform", "--n", "500"]
        ) == 0
        text = capsys.readouterr().out
        assert "built 500 MBRs" in text
        assert "fingerprint:" in text
        assert out.exists()
        assert main(["info", str(out)]) == 0

    def test_build_from_file(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "src.csv"
        save_relation(uniform_rects(100, seed=1), src)
        out = tmp_path / "conv.rcd"
        assert main(["build", str(out), "--from", str(src)]) == 0
        assert read_header(out).n == 100

    def test_build_rejects_ambiguous_input(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(["build", str(tmp_path / "x.rcd")]) == 2
        )  # neither --from nor --pattern
        assert (
            main(
                [
                    "build",
                    str(tmp_path / "x.npy"),
                    "--pattern",
                    "uniform",
                ]
            )
            == 2
        )  # wrong suffix
