"""Unit and property tests for locational codes and level functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE, rect_contains_point
from repro.core.space import Space
from repro.sfc.locational import (
    cell_of_rect,
    cells_for_rect,
    curve_decoder,
    curve_encoder,
    is_ancestor_code,
    mxcif_level,
    point_cell,
    preorder_key,
    size_level,
)

UNIT = Space(0.0, 0.0, 1.0, 1.0)


class TestPointCell:
    def test_level0_single_cell(self):
        assert point_cell(UNIT, 0.7, 0.2, 0) == (0, 0)

    def test_level1_quadrants(self):
        assert point_cell(UNIT, 0.25, 0.25, 1) == (0, 0)
        assert point_cell(UNIT, 0.75, 0.25, 1) == (1, 0)
        assert point_cell(UNIT, 0.25, 0.75, 1) == (0, 1)
        assert point_cell(UNIT, 0.75, 0.75, 1) == (1, 1)

    def test_far_border_clamped(self):
        assert point_cell(UNIT, 1.0, 1.0, 3) == (7, 7)

    def test_boundary_belongs_to_upper_cell(self):
        # half-open cells: 0.5 at level 1 belongs to cell 1
        assert point_cell(UNIT, 0.5, 0.5, 1) == (1, 1)

    def test_point_outside_space_clamped(self):
        assert point_cell(UNIT, -0.5, 2.0, 2) == (0, 3)

    def test_non_unit_space(self):
        space = Space(10.0, 20.0, 30.0, 40.0)
        assert point_cell(space, 15.0, 35.0, 1) == (0, 1)


class TestMxCifLevel:
    def test_rect_spanning_centre_is_level0(self):
        k = KPE(1, 0.49, 0.49, 0.51, 0.51)
        assert mxcif_level(UNIT, k, 10) == 0

    def test_tiny_rect_away_from_boundaries(self):
        k = KPE(1, 0.26, 0.26, 0.27, 0.27)
        assert mxcif_level(UNIT, k, 10) >= 5

    def test_tiny_rect_on_major_boundary_sinks_to_level0(self):
        """The design flaw of original S3J that motivates replication."""
        k = KPE(1, 0.4999, 0.4999, 0.5001, 0.5001)
        assert mxcif_level(UNIT, k, 10) == 0

    def test_capped_at_max_level(self):
        k = KPE(1, 0.3, 0.3, 0.3, 0.3)  # degenerate point
        assert mxcif_level(UNIT, k, 6) == 6

    def test_cell_of_rect_covers_rect(self):
        k = KPE(1, 0.1, 0.6, 0.2, 0.7)
        level = mxcif_level(UNIT, k, 10)
        ix, iy = cell_of_rect(UNIT, k, level)
        n = 1 << level
        assert ix / n <= k.xl and k.xh <= (ix + 1) / n
        assert iy / n <= k.yl and k.yh <= (iy + 1) / n


class TestSizeLevel:
    def test_paper_formula_examples(self):
        # edge 0.3 fits 2^-1 = 0.5 but not 2^-2 -> level 1
        assert size_level(UNIT, KPE(1, 0.0, 0.0, 0.3, 0.3), 10) == 1
        # edge exactly 0.25 fits level 2
        assert size_level(UNIT, KPE(1, 0.0, 0.0, 0.25, 0.25), 10) == 2
        # edge 1.0 -> level 0
        assert size_level(UNIT, KPE(1, 0.0, 0.0, 1.0, 1.0), 10) == 0

    def test_min_over_axes(self):
        k = KPE(1, 0.0, 0.0, 0.3, 0.01)  # x-edge limits the level
        assert size_level(UNIT, k, 10) == 1

    def test_degenerate_goes_to_max_level(self):
        assert size_level(UNIT, KPE(1, 0.2, 0.2, 0.2, 0.2), 8) == 8

    def test_position_independent(self):
        """Unlike the MX-CIF level, the size level ignores placement —
        the paper's fix for boundary-straddling small rectangles."""
        a = KPE(1, 0.10, 0.10, 0.13, 0.13)
        b = KPE(2, 0.49, 0.49, 0.52, 0.52)  # straddles the centre
        assert size_level(UNIT, a, 10) == size_level(UNIT, b, 10)

    def test_at_least_mxcif_level(self):
        """Size level >= MX-CIF level: replication can only move
        rectangles upward (deeper)."""
        k = KPE(1, 0.4999, 0.4999, 0.5001, 0.5001)
        assert size_level(UNIT, k, 10) >= mxcif_level(UNIT, k, 10)


class TestCellsForRect:
    def test_contained_rect_single_cell(self):
        k = KPE(1, 0.1, 0.1, 0.2, 0.2)
        assert cells_for_rect(UNIT, k, 1) == [(0, 0)]

    def test_straddling_rect_four_cells(self):
        k = KPE(1, 0.45, 0.45, 0.55, 0.55)
        assert sorted(cells_for_rect(UNIT, k, 1)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_row_of_cells(self):
        k = KPE(1, 0.05, 0.3, 0.95, 0.4)
        cells = cells_for_rect(UNIT, k, 2)
        assert sorted(cells) == [(0, 1), (1, 1), (2, 1), (3, 1)]


class TestPreorderAndAncestors:
    def test_preorder_key_alignment(self):
        assert preorder_key(0b11, 1, 3) == 0b110000
        assert preorder_key(0b11, 3, 3) == 0b11

    def test_root_is_ancestor_of_all(self):
        assert is_ancestor_code(0, 0, 0b101101, 3)

    def test_ancestor_by_prefix(self):
        assert is_ancestor_code(0b10, 1, 0b1011, 2)
        assert not is_ancestor_code(0b11, 1, 0b1011, 2)

    def test_deeper_never_ancestor_of_shallower(self):
        assert not is_ancestor_code(0b1011, 2, 0b10, 1)

    def test_equal_cell_is_ancestor(self):
        assert is_ancestor_code(0b10, 1, 0b10, 1)


class TestCurveRegistry:
    def test_known_curves(self):
        for name in ("peano", "z", "morton", "hilbert"):
            assert callable(curve_encoder(name))
            assert callable(curve_decoder(name))

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError):
            curve_encoder("dragon")
        with pytest.raises(ValueError):
            curve_decoder("dragon")


rect = st.tuples(
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
).map(lambda c: KPE(0, min(c[0], c[2]), min(c[1], c[3]), max(c[0], c[2]), max(c[1], c[3])))


class TestLevelProperties:
    @given(rect, st.integers(1, 12))
    def test_replication_bound_of_four(self, k, max_level):
        """A rectangle at its size level overlaps at most 4 cells — the
        paper's redundancy bound for S3J."""
        level = size_level(UNIT, k, max_level)
        assert len(cells_for_rect(UNIT, k, level)) <= 4

    @given(rect, st.integers(1, 12))
    def test_size_level_in_range(self, k, max_level):
        assert 0 <= size_level(UNIT, k, max_level) <= max_level

    @given(rect, st.integers(1, 12))
    def test_mxcif_cell_unique(self, k, max_level):
        """At the MX-CIF level the rectangle maps to exactly one cell."""
        level = mxcif_level(UNIT, k, max_level)
        assert len(cells_for_rect(UNIT, k, level)) == 1

    @given(rect, st.floats(0, 1), st.floats(0, 1), st.integers(0, 10))
    def test_point_cell_consistent_with_cells_for_rect(self, k, tx, ty, level):
        """Every point of a rectangle maps to one of its listed cells."""
        x = k.xl + tx * (k.xh - k.xl)
        y = k.yl + ty * (k.yh - k.yl)
        assert rect_contains_point(k, x, y)
        assert point_cell(UNIT, x, y, level) in cells_for_rect(UNIT, k, level)

    @given(rect, st.integers(1, 10))
    def test_size_level_at_least_mxcif(self, k, max_level):
        assert size_level(UNIT, k, max_level) >= mxcif_level(UNIT, k, max_level)
