"""Unit tests for the sorted-list interval tree (sweep_tree status)."""

import random

from repro.internal.sweep_tree import IntervalTree


def collect_hits(tree, qlo, qhi, sweep_x):
    hits = []
    tests = [0]
    tree.query(qlo, qhi, sweep_x, hits.append, tests)
    return hits, tests[0]


class TestIntervalTree:
    def test_basic_overlap(self):
        tree = IntervalTree(0.0, 1.0)
        tree.insert(0.2, 0.4, 10.0, "a")
        tree.insert(0.6, 0.8, 10.0, "b")
        hits, _ = collect_hits(tree, 0.3, 0.7, 0.0)
        assert sorted(hits) == ["a", "b"]

    def test_early_exit_skips_high_starts(self):
        tree = IntervalTree(0.0, 1.0)
        # All at the root node (straddle mid), sorted by start.
        tree.insert(0.45, 0.55, 10.0, "low")
        tree.insert(0.49, 0.60, 10.0, "mid")
        tree.insert(0.50, 0.70, 10.0, "high")
        hits, tests = collect_hits(tree, 0.40, 0.47, 0.0)
        assert hits == ["low"]
        # "high" (start 0.50 > qhi 0.47) must not even be tested.
        assert tests <= 2

    def test_expiry(self):
        tree = IntervalTree(0.0, 1.0)
        tree.insert(0.45, 0.55, expire_x=1.0, payload="old")
        hits, _ = collect_hits(tree, 0.4, 0.6, sweep_x=2.0)
        assert hits == []
        assert tree.size == 0

    def test_entries_stay_sorted_after_compaction(self):
        tree = IntervalTree(0.0, 1.0)
        tree.insert(0.44, 0.56, 1.0, "dies")
        tree.insert(0.46, 0.58, 9.0, "lives1")
        tree.insert(0.48, 0.60, 9.0, "lives2")
        collect_hits(tree, 0.45, 0.47, 5.0)  # purges "dies"
        starts = [e[0] for e in tree.root.entries]
        assert starts == sorted(starts)

    def test_randomized_against_brute_force(self):
        rng = random.Random(77)
        tree = IntervalTree(0.0, 1.0)
        reference = []
        for i in range(200):
            lo = rng.random()
            hi = min(1.0, lo + rng.random() * 0.15)
            expire = rng.random() * 10
            tree.insert(lo, hi, expire, i)
            reference.append((lo, hi, expire, i))
        for sweep in sorted(rng.random() * 10 for _ in range(80)):
            qlo = rng.random()
            qhi = min(1.0, qlo + rng.random() * 0.25)
            hits, _ = collect_hits(tree, qlo, qhi, sweep)
            expected = [
                payload
                for lo, hi, expire, payload in reference
                if expire >= sweep and lo <= qhi and qlo <= hi
            ]
            assert sorted(hits) == sorted(expected)
