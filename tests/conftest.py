"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.core.rect import KPE

# Let the process-pool tests exercise real multi-worker fan-out even on
# single-core CI boxes, where ParallelPBSM would otherwise clamp to 1.
os.environ.setdefault("REPRO_MAX_WORKERS", "4")

# A moderate default so the full suite stays fast; CI-style deep runs can
# select the "thorough" profile via HYPOTHESIS_PROFILE.
settings.register_profile(
    "default",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture(autouse=True)
def _fresh_clamp_warnings():
    """Clamp RuntimeWarnings fire once per process; re-arm them per test."""
    from repro.pbsm.parallel import reset_clamp_warnings

    reset_clamp_warnings()
    yield


def random_kpes(n: int, seed: int, start_oid: int = 0, max_edge: float = 0.1):
    """Plain-random KPEs with a plain `random.Random` (no numpy)."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x = rng.random()
        y = rng.random()
        w = rng.random() * max_edge
        h = rng.random() * max_edge
        out.append(KPE(start_oid + i, x, y, x + w, y + h))
    return out


@pytest.fixture
def small_pair():
    """Two small random relations with a few hundred result pairs."""
    left = random_kpes(200, seed=11, max_edge=0.06)
    right = random_kpes(200, seed=22, start_oid=10_000, max_edge=0.06)
    return left, right


def _generators():
    """The numpy-backed dataset generators, or a skip without numpy.

    Imported lazily so a no-numpy environment can still collect and run
    everything that does not need them.
    """
    import repro.datasets as datasets

    if not datasets.HAVE_GENERATORS:
        pytest.skip("dataset generators need numpy (the [perf] extra)")
    return datasets


@pytest.fixture
def clustered_pair():
    """Skewed relations (cluster hot spots)."""
    datasets = _generators()
    left = datasets.clustered_rects(300, seed=5)
    right = datasets.clustered_rects(300, seed=6, start_oid=10_000)
    return left, right


@pytest.fixture
def uniform_pair():
    """Unskewed relations from the numpy generator."""
    datasets = _generators()
    left = datasets.uniform_rects(250, seed=3, mean_edge=0.02)
    right = datasets.uniform_rects(250, seed=4, mean_edge=0.02, start_oid=10_000)
    return left, right
