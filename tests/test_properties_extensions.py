"""Hypothesis cross-validation for the extension drivers.

The core drivers already have property suites (test_properties.py); this
file extends the same any-input-matches-brute-force guarantee to the
index-based joins, the spatial hash join, the parallel PBSM, and the
distance join.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import distance_join, mbr_distance
from repro.core.rect import KPE
from repro.internal import brute_force_pairs
from repro.pbsm.parallel import ParallelPBSM, lpt_schedule
from repro.rtree import IndexNestedLoopJoin, RTreeJoin, SeededTreeJoin
from repro.shj import SpatialHashJoin

coord = st.floats(0, 1, allow_nan=False)


@st.composite
def kpe(draw, oid):
    x1, y1, x2, y2 = draw(coord), draw(coord), draw(coord), draw(coord)
    return KPE(oid, min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


@st.composite
def relation_pair(draw, max_size=20):
    n_left = draw(st.integers(0, max_size))
    n_right = draw(st.integers(0, max_size))
    left = [draw(kpe(i)) for i in range(n_left)]
    right = [draw(kpe(1000 + i)) for i in range(n_right)]
    return left, right


class TestIndexJoinsUnderHypothesis:
    @given(relation_pair(), st.sampled_from([4, 16]))
    def test_rtree_join_any_input(self, pair, fanout):
        left, right = pair
        res = RTreeJoin(fanout=fanout).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))

    @given(relation_pair())
    def test_inlj_any_input(self, pair):
        left, right = pair
        res = IndexNestedLoopJoin(fanout=8).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))

    @given(relation_pair(), st.integers(1, 3))
    @settings(max_examples=25)
    def test_seeded_any_input(self, pair, seed_levels):
        left, right = pair
        res = SeededTreeJoin(fanout=8, seed_levels=seed_levels).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))


class TestShjUnderHypothesis:
    @given(relation_pair(), st.sampled_from([256, 8192]))
    def test_any_input(self, pair, memory):
        left, right = pair
        res = SpatialHashJoin(memory).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))


class TestParallelUnderHypothesis:
    @given(relation_pair(), st.integers(1, 6))
    @settings(max_examples=25)
    def test_any_input_any_workers(self, pair, workers):
        left, right = pair
        res = ParallelPBSM(1024, workers=workers).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))

    @given(st.lists(st.floats(0, 100, allow_nan=False), max_size=30), st.integers(1, 8))
    def test_lpt_conserves_work(self, tasks, workers):
        makespan, loads = lpt_schedule(tasks, workers)
        assert sum(loads) == pytest.approx(sum(tasks))
        assert makespan == (max(loads) if loads else 0.0)
        if tasks:
            assert makespan >= max(tasks) - 1e-12
            assert makespan >= sum(tasks) / workers - 1e-9


class TestDistanceJoinUnderHypothesis:
    @given(relation_pair(max_size=12), st.floats(0, 0.3, allow_nan=False))
    @settings(max_examples=25)
    def test_any_input_any_eps(self, pair, eps):
        left, right = pair
        res = distance_join(left, right, eps, 2048)
        expected = {
            (a.oid, b.oid)
            for a in left
            for b in right
            if mbr_distance(a, b) <= eps
        }
        assert res.pair_set() == expected
        assert not res.has_duplicates()
