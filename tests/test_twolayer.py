"""Two-layer corner-class duplicate avoidance: classes, schedule, kernels.

Unit-level coverage for ``pbsm/twolayer.py`` and its vectorized twin
``kernels/twolayer.py``: corner-class assignment (including degenerate
point MBRs and slivers), the nine-combo mini-join schedule's
exactly-once guarantee, scalar/kernel parity, the zero-dedup-work
counter contract, and the driver integration (sequential PBSM with
``dedup="twolayer"`` on every internal algorithm).
"""

import pytest

from repro.core.phases import PHASE_JOIN
from repro.core.refpoint import reference_point
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import INTERNAL_ALGORITHMS, brute_force_pairs
from repro.io.costmodel import mb
from repro.kernels.backend import numpy_enabled
from repro.pbsm import PBSM, TileGrid
from repro.pbsm.twolayer import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    MINI_JOIN_SCHEDULE,
    bottom_left_refpoint,
    classify_tiles,
    corner_class,
    twolayer_partition_join,
)

needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="columnar kernels need numpy"
)

SPACE = Space(0.0, 0.0, 1.0, 1.0)


def grid4(n_partitions=1):
    return TileGrid(SPACE, 4, 4, n_partitions)


def point_datasets(n=60, seed=7):
    """Pure point-MBR relations (xl==xh, yl==yh), lattice-aligned."""
    import random

    rng = random.Random(seed)
    lattice = [i / 8.0 for i in range(9)]
    left = []
    right = []
    for i in range(n):
        x, y = rng.choice(lattice), rng.choice(lattice)
        left.append((i, x, y, x, y))
        x, y = rng.choice(lattice), rng.choice(lattice)
        right.append((1000 + i, x, y, x, y))
    return left, right


# ----------------------------------------------------------------------
# corner classes
# ----------------------------------------------------------------------
class TestCornerClass:
    def test_classes_relative_to_home_tile(self):
        grid = grid4()
        rect = (1, 0.30, 0.30, 0.60, 0.60)  # home tile (1, 1), spans to (2, 2)
        assert corner_class(grid, rect, 1, 1) == CLASS_A
        assert corner_class(grid, rect, 2, 1) == CLASS_B
        assert corner_class(grid, rect, 1, 2) == CLASS_C
        assert corner_class(grid, rect, 2, 2) == CLASS_D

    def test_point_mbr_is_always_class_a(self):
        grid = grid4()
        for x, y in [(0.0, 0.0), (0.25, 0.25), (1.0, 1.0), (0.999, 0.5)]:
            point = (1, x, y, x, y)
            tiles = list(grid.tiles_for_rect(point))
            assert len(tiles) == 1  # a point overlaps exactly one tile
            tx, ty = tiles[0]
            assert corner_class(grid, point, tx, ty) == CLASS_A

    def test_sliver_classes(self):
        grid = grid4()
        # Zero-height sliver crossing a vertical tile edge: A at home,
        # B to the right, never C or D.
        sliver = (1, 0.20, 0.50, 0.30, 0.50)
        assert corner_class(grid, sliver, 0, 2) == CLASS_A
        assert corner_class(grid, sliver, 1, 2) == CLASS_B

    def test_classify_tiles_counts_and_partition_filter(self):
        grid = TileGrid(SPACE, 4, 4, 2)
        rect = (1, 0.30, 0.30, 0.60, 0.60)  # overlaps tiles (1..2, 1..2)
        counters = CpuCounters()
        for pid in (0, 1):
            groups = classify_tiles([rect], grid, pid, counters)
            for (tx, ty), by_class in groups.items():
                assert grid.partition_of_tile(tx, ty) == pid
                assert sum(len(g) for g in by_class) == 1
        assert counters.structure_ops > 0


# ----------------------------------------------------------------------
# ownership points on degenerate geometry
# ----------------------------------------------------------------------
class TestDegenerateOwnership:
    def test_refpoint_and_bottom_left_inside_both_for_points(self):
        # A point MBR intersecting a rectangle: both ownership points
        # must coincide with the point itself.
        point = (1, 0.5, 0.5, 0.5, 0.5)
        rect = (2, 0.25, 0.25, 0.75, 0.75)
        assert reference_point(point, rect) == (0.5, 0.5)
        assert bottom_left_refpoint(point, rect) == (0.5, 0.5)
        assert bottom_left_refpoint(rect, point) == (0.5, 0.5)

    def test_touching_corners_own_the_touch_point(self):
        # Two rectangles touching at exactly one corner: the
        # intersection is that corner, and both ownership conventions
        # pick it.
        a = (1, 0.0, 0.0, 0.5, 0.5)
        b = (2, 0.5, 0.5, 1.0, 1.0)
        assert bottom_left_refpoint(a, b) == (0.5, 0.5)
        assert reference_point(a, b) == (0.5, 0.5)
        grid = grid4()
        owner = grid.tile_of_point(*bottom_left_refpoint(a, b))
        assert owner in set(grid.tiles_for_rect(a))
        assert owner in set(grid.tiles_for_rect(b))


# ----------------------------------------------------------------------
# mini-join schedule: exactly once, by construction
# ----------------------------------------------------------------------
class TestMiniJoinSchedule:
    def test_schedule_is_the_ownership_iff(self):
        # (r_class, s_class) is in the schedule exactly when the
        # intersection's bottom-left corner is owned by the tile:
        # per axis, at least one low corner inside.  Enumerating all 16
        # ordered combinations must reproduce the schedule — including
        # D x A, which an A-side-only listing would drop.
        def x_low_inside(cls):
            return cls in (CLASS_A, CLASS_C)

        def y_low_inside(cls):
            return cls in (CLASS_A, CLASS_B)

        expected = {
            (rc, sc)
            for rc in range(4)
            for sc in range(4)
            if (x_low_inside(rc) or x_low_inside(sc))
            and (y_low_inside(rc) or y_low_inside(sc))
        }
        assert set(MINI_JOIN_SCHEDULE) == expected
        assert (CLASS_D, CLASS_A) in MINI_JOIN_SCHEDULE

    def test_exactly_once_with_heavy_overlap(self):
        # Rectangles spanning many tiles: without the schedule every
        # shared tile would re-emit the pair.
        left = [(1, 0.1, 0.1, 0.9, 0.9), (2, 0.0, 0.0, 1.0, 1.0)]
        right = [(10, 0.2, 0.2, 0.8, 0.8), (11, 0.45, 0.45, 0.55, 0.55)]
        grid = grid4()
        pairs = twolayer_partition_join(
            left, right, grid, 0, INTERNAL_ALGORITHMS["sweep_list"],
            CpuCounters(),
        )
        assert sorted(pairs) == sorted(brute_force_pairs(left, right))
        assert len(pairs) == len(set(pairs))


# ----------------------------------------------------------------------
# driver integration
# ----------------------------------------------------------------------
class TestDriverIntegration:
    @pytest.mark.parametrize(
        "internal", ["sweep_list", "sweep_trie", "sweep_tree", "nested_loops"]
    )
    def test_sequential_matches_rpm_every_internal(self, internal, small_pair):
        left, right = small_pair
        rpm = PBSM(mb(0.25), internal=internal, dedup="rpm").run(left, right)
        two = PBSM(mb(0.25), internal=internal, dedup="twolayer").run(
            left, right
        )
        assert two.pair_set() == rpm.pair_set()
        assert not two.has_duplicates()

    def test_zero_dedup_work_counters(self, small_pair):
        left, right = small_pair
        result = PBSM(mb(1.0), dedup="twolayer").run(left, right)
        stats = result.stats
        assert stats.algorithm.endswith(",2L)")
        for cpu in stats.cpu_by_phase.values():
            assert cpu.get("refpoint_tests", 0) == 0
        assert stats.duplicates_suppressed == 0
        assert stats.duplicates_sorted_out == 0

    def test_point_dataset_regression(self):
        # Pure point MBRs: every record is class A in its single tile;
        # coincident points must join exactly once under all dedups.
        left, right = point_datasets()
        truth = set(brute_force_pairs(left, right))
        for dedup in ("rpm", "sort", "twolayer"):
            result = PBSM(mb(0.05), dedup=dedup).run(left, right)
            assert result.pair_set() == truth, dedup
            assert not result.has_duplicates()

    def test_repartition_fallback_still_exact(self):
        # A memory budget small enough to force repartitioning: composed
        # regions lose the tile grid, so twolayer falls back to the
        # bottom-left ownership test — honestly charged as refpoint
        # tests — and the pair set must stay exact.
        import random

        rng = random.Random(3)
        left = []
        right = []
        for i in range(1500):
            x, y = rng.random(), rng.random()
            left.append((i, x, y, x + 0.02, y + 0.02))
            x, y = rng.random(), rng.random()
            right.append((10_000 + i, x, y, x + 0.02, y + 0.02))
        result = PBSM(mb(0.01), dedup="twolayer").run(left, right)
        assert result.stats.repartition_events > 0
        rpm = PBSM(mb(0.01), dedup="rpm").run(left, right)
        assert result.pair_set() == rpm.pair_set()
        assert not result.has_duplicates()

    @needs_numpy
    def test_kernel_path_matches_scalar(self, small_pair):
        left, right = small_pair
        scalar = PBSM(mb(0.25), internal="sweep_list", dedup="twolayer").run(
            left, right
        )
        kernel = PBSM(mb(0.25), internal="sweep_numpy", dedup="twolayer").run(
            left, right
        )
        assert kernel.pair_set() == scalar.pair_set()
        assert not kernel.has_duplicates()

    @needs_numpy
    def test_kernel_charges_batch_ops_only(self, small_pair):
        left, right = small_pair
        result = PBSM(mb(1.0), internal="sweep_numpy", dedup="twolayer").run(
            left, right
        )
        join_cpu = result.stats.cpu_by_phase[PHASE_JOIN]
        assert join_cpu["batch_ops"] > 0
        assert join_cpu["refpoint_tests"] == 0


# ----------------------------------------------------------------------
# per-mini-join sweep-axis heuristic (coarse grids below the stripe floor)
# ----------------------------------------------------------------------
@needs_numpy
class TestAxisHeuristic:
    """Sub-floor mini-joins probe both sweep axes and may run transposed.

    The coarse-grid caveat of docs/duplicates.md: below
    ``STRIPE_MIN_RECORDS`` the forward scan runs unstriped, so an
    x-anchored scan over wide-flat rectangles expands nearly the full
    cross product.  The heuristic transposes those scans to y-anchored
    windows — unstriped, y-pruning intact — without changing a single
    emitted pair or the split/counter invariants.
    """

    def coarse_setup(self):
        import random

        from repro.kernels.columnar import ColumnarRelation

        rng = random.Random(5)
        kpes = []
        for i in range(3000):
            x, y = rng.random(), rng.random()
            # wide in x, flat in y: the regime where x-anchored windows
            # are nearly the full active set but y windows stay tiny
            kpes.append((i, x, y, min(x + 0.08, 1.0), min(y + 0.0004, 1.0)))
        grid = TileGrid(SPACE, 2, 2, 4)
        return ColumnarRelation.from_kpes(kpes), kpes, grid

    def run_all_partitions(self, cols, grid, stripe_slice=None, n_parts=None):
        from repro.kernels.twolayer import twolayer_join_ids

        counters = CpuCounters()
        pairs = []
        for pid in range(4):
            if n_parts is None:
                rid, sid, _ = twolayer_join_ids(cols, cols, grid, pid, counters)
                pairs.extend(zip(rid.tolist(), sid.tolist()))
            else:
                for part in range(n_parts):
                    rid, sid, _ = twolayer_join_ids(
                        cols, cols, grid, pid, counters,
                        stripe_slice=(part, n_parts),
                    )
                    pairs.extend(zip(rid.tolist(), sid.tolist()))
        return pairs, counters

    def test_transposed_scans_reduce_batch_ops(self):
        from repro.kernels import twolayer as tl

        cols, _, grid = self.coarse_setup()
        with_heuristic, c_on = self.run_all_partitions(cols, grid)
        original = tl.AXIS_PROBE_MIN_RECORDS
        tl.AXIS_PROBE_MIN_RECORDS = 10**9  # disable
        try:
            without, c_off = self.run_all_partitions(cols, grid)
        finally:
            tl.AXIS_PROBE_MIN_RECORDS = original
        assert sorted(with_heuristic) == sorted(without)
        # y-pruning must at least halve the candidate volume here
        assert c_on.batch_ops * 2 < c_off.batch_ops

    def test_pair_set_matches_scalar_engine(self):
        cols, kpes, grid = self.coarse_setup()
        from repro.internal.sweep_list import sweep_list_join

        kernel_pairs, _ = self.run_all_partitions(cols, grid)
        scalar = []
        counters = CpuCounters()
        for pid in range(4):
            scalar.extend(
                twolayer_partition_join(
                    kpes, kpes, grid, pid, sweep_list_join, counters
                )
            )
        assert sorted(kernel_pairs) == sorted(scalar)

    def test_split_parts_byte_identical_and_charged_once(self):
        cols, _, grid = self.coarse_setup()
        full, c_full = self.run_all_partitions(cols, grid)
        split, c_split = self.run_all_partitions(cols, grid, n_parts=3)
        # concatenated in part order the split run reproduces the
        # unsplit output exactly, and the probe/sort/scan charges are
        # levied once across siblings
        assert split == full
        assert c_split.batch_ops == c_full.batch_ops

    def test_probe_skipped_below_minimum(self):
        import random

        from repro.kernels import twolayer as tl
        from repro.kernels.columnar import ColumnarRelation
        from repro.kernels.twolayer import twolayer_join_ids

        rng = random.Random(1)
        tiny = []
        for i in range(40):  # below AXIS_PROBE_MIN_RECORDS per mini-join
            x, y = rng.random(), rng.random()
            tiny.append((i, x, y, min(x + 0.1, 1.0), min(y + 0.001, 1.0)))
        cols = ColumnarRelation.from_kpes(tiny)
        grid = TileGrid(SPACE, 2, 2, 1)
        c_on = CpuCounters()
        rid_on, sid_on, _ = twolayer_join_ids(cols, cols, grid, 0, c_on)
        original = tl.AXIS_PROBE_MIN_RECORDS
        tl.AXIS_PROBE_MIN_RECORDS = 10**9
        try:
            c_off = CpuCounters()
            rid_off, sid_off, _ = twolayer_join_ids(cols, cols, grid, 0, c_off)
        finally:
            tl.AXIS_PROBE_MIN_RECORDS = original
        # below the probe minimum the heuristic must be a no-op
        assert rid_on.tolist() == rid_off.tolist()
        assert sid_on.tolist() == sid_off.tolist()
        assert c_on.batch_ops == c_off.batch_ops
