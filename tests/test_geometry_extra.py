"""Tests for the extended exact-geometry toolkit (distances, clipping)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.refine import (
    ConvexPolygon,
    Polyline,
    clip_convex,
    point_segment_distance,
    polygon_area,
    polyline_distance,
    regular_polygon,
    segment_distance,
)


class TestPointSegmentDistance:
    def test_projection_inside(self):
        assert point_segment_distance((0.5, 1.0), (0, 0), (1, 0)) == pytest.approx(1.0)

    def test_clamped_to_endpoint(self):
        assert point_segment_distance((2.0, 0.0), (0, 0), (1, 0)) == pytest.approx(1.0)

    def test_degenerate_segment(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 0)) == pytest.approx(5.0)

    def test_point_on_segment(self):
        assert point_segment_distance((0.3, 0.0), (0, 0), (1, 0)) == 0.0


class TestSegmentDistance:
    def test_intersecting_is_zero(self):
        assert segment_distance((0, 0), (1, 1), (0, 1), (1, 0)) == 0.0

    def test_parallel(self):
        assert segment_distance((0, 0), (1, 0), (0, 0.3), (1, 0.3)) == pytest.approx(0.3)

    def test_collinear_gap(self):
        assert segment_distance((0, 0), (0.3, 0), (0.7, 0), (1, 0)) == pytest.approx(0.4)

    def test_symmetric(self):
        a = segment_distance((0, 0), (1, 0), (2, 1), (3, 1))
        b = segment_distance((2, 1), (3, 1), (0, 0), (1, 0))
        assert a == pytest.approx(b)


class TestPolylineDistance:
    def test_crossing_is_zero(self):
        a = Polyline([(0, 0), (1, 1)])
        b = Polyline([(0, 1), (1, 0)])
        assert polyline_distance(a, b) == 0.0

    def test_parallel_chains(self):
        a = Polyline([(0, 0), (0.5, 0), (1, 0)])
        b = Polyline([(0, 0.25), (1, 0.25)])
        assert polyline_distance(a, b) == pytest.approx(0.25)

    def test_consistent_with_segment_distance(self):
        a = Polyline([(0, 0), (1, 0)])
        b = Polyline([(2, 2), (3, 3)])
        assert polyline_distance(a, b) == pytest.approx(
            segment_distance((0, 0), (1, 0), (2, 2), (3, 3))
        )


class TestPolygonArea:
    def test_unit_square(self):
        assert polygon_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == pytest.approx(1.0)

    def test_orientation_sign(self):
        ccw = [(0, 0), (1, 0), (1, 1)]
        cw = list(reversed(ccw))
        assert polygon_area(ccw) > 0
        assert polygon_area(cw) < 0

    def test_regular_polygon_area_formula(self):
        sides = 6
        radius = 0.3
        poly = regular_polygon(0.5, 0.5, radius, sides)
        expected = 0.5 * sides * radius * radius * math.sin(2 * math.pi / sides)
        assert abs(polygon_area(poly.points)) == pytest.approx(expected, rel=1e-9)


class TestClipConvex:
    def test_disjoint_returns_none(self):
        a = regular_polygon(0.2, 0.2, 0.1)
        b = regular_polygon(0.8, 0.8, 0.1)
        assert clip_convex(a, b) is None

    def test_contained_returns_inner(self):
        outer = regular_polygon(0.5, 0.5, 0.4, 16)
        inner = regular_polygon(0.5, 0.5, 0.1, 16)
        clipped = clip_convex(inner, outer)
        assert clipped is not None
        assert abs(polygon_area(clipped.points)) == pytest.approx(
            abs(polygon_area(inner.points)), rel=1e-6
        )

    def test_overlap_area_bounded(self):
        a = regular_polygon(0.45, 0.5, 0.2, 8)
        b = regular_polygon(0.55, 0.5, 0.2, 8)
        clipped = clip_convex(a, b)
        assert clipped is not None
        area = abs(polygon_area(clipped.points))
        assert 0 < area < abs(polygon_area(a.points))

    def test_symmetric_area(self):
        a = regular_polygon(0.45, 0.5, 0.2, 8)
        b = regular_polygon(0.55, 0.52, 0.18, 8)
        ab = clip_convex(a, b)
        ba = clip_convex(b, a)
        assert ab is not None and ba is not None
        assert abs(polygon_area(ab.points)) == pytest.approx(
            abs(polygon_area(ba.points)), rel=1e-9
        )

    def test_two_squares_known_overlap(self):
        sq1 = ConvexPolygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        sq2 = ConvexPolygon([(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)])
        clipped = clip_convex(sq1, sq2)
        assert clipped is not None
        assert abs(polygon_area(clipped.points)) == pytest.approx(0.25)


coord = st.floats(0, 1, allow_nan=False)


class TestGeometryProperties:
    @given(coord, coord, coord, coord, coord, coord)
    def test_segment_distance_nonnegative(self, x1, y1, x2, y2, x3, y3):
        d = segment_distance((x1, y1), (x2, y2), (x3, y3), (x3, y3))
        assert d >= 0.0

    @given(
        st.floats(0.2, 0.8),
        st.floats(0.2, 0.8),
        st.floats(0.05, 0.2),
        st.integers(3, 10),
    )
    def test_clip_with_self_is_identity_area(self, cx, cy, radius, sides):
        poly = regular_polygon(cx, cy, radius, sides)
        clipped = clip_convex(poly, poly)
        assert clipped is not None
        assert abs(polygon_area(clipped.points)) == pytest.approx(
            abs(polygon_area(poly.points)), rel=1e-6
        )
