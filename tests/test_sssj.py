"""Tests for the SSSJ baseline."""

import pytest

from repro.core.phases import PHASE_SORT
from repro.internal import brute_force_pairs
from repro.sssj import SSSJ, sssj_join

from tests.conftest import random_kpes


class TestConfiguration:
    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            SSSJ(0)

    def test_rejects_non_sweep_internal(self):
        with pytest.raises(ValueError):
            SSSJ(1000, internal="nested_loops")


@pytest.mark.parametrize("internal", ["sweep_list", "sweep_trie", "sweep_tree"])
class TestCorrectness:
    def test_matches_brute_force(self, internal, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = SSSJ(8192, internal=internal).run(left, right)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_tiny_memory_forces_external_sort(self, internal, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = SSSJ(512, internal=internal).run(left, right)
        assert res.pair_set() == truth
        # run generation + merge must have charged I/O
        assert res.stats.io_units_by_phase.get(PHASE_SORT, 0.0) > 0


class TestBehaviour:
    def test_empty_inputs(self):
        assert len(SSSJ(1000).run([], random_kpes(5, 1))) == 0

    def test_self_join(self):
        rel = random_kpes(100, 5, max_edge=0.1)
        res = SSSJ(4096).run(rel, rel)
        assert res.pair_set() == set(brute_force_pairs(rel, rel))

    def test_in_memory_sort_has_no_io(self, small_pair):
        """With a big budget SSSJ never touches the disk — but it still
        cannot emit anything until both inputs are fully sorted."""
        left, right = small_pair
        res = SSSJ(10**9).run(left, right)
        assert res.stats.io_units == 0.0

    def test_convenience(self, small_pair):
        left, right = small_pair
        res = sssj_join(left, right, memory_bytes=8192)
        assert res.pair_set() == set(brute_force_pairs(left, right))
