"""Hypothesis property tests spanning modules: the RPM invariants.

The central theorem of the paper (Section 3.2.1) is that, given a disjoint
partitioning of the data space and replication of records into every
overlapped partition, reporting a pair only from the partition containing
its reference point yields each result exactly once.  These tests state
that property directly against arbitrary rectangle sets, grids and level
hierarchies.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.refpoint import reference_point
from repro.core.space import Space
from repro.internal import brute_force_pairs
from repro.pbsm import PBSM, TileGrid
from repro.s3j import S3J
from repro.sfc.locational import cells_for_rect, point_cell, size_level

UNIT = Space(0.0, 0.0, 1.0, 1.0)

coord = st.floats(0, 1, allow_nan=False, allow_infinity=False)


@st.composite
def kpe(draw, oid):
    x1, y1, x2, y2 = draw(coord), draw(coord), draw(coord), draw(coord)
    return KPE(oid, min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


@st.composite
def relation_pair(draw, max_size=25):
    n_left = draw(st.integers(0, max_size))
    n_right = draw(st.integers(0, max_size))
    left = [draw(kpe(i)) for i in range(n_left)]
    right = [draw(kpe(1000 + i)) for i in range(n_right)]
    return left, right


class TestRpmOverGrids:
    @given(relation_pair(), st.integers(1, 6), st.integers(1, 9))
    def test_grid_rpm_exactly_once(self, pair, side, n_partitions):
        """Manual re-statement of PBSM's RPM over an arbitrary grid:
        replicate both relations into partitions, join every partition
        pair, keep a pair iff its reference point's tile belongs to the
        current partition — the multiset of kept pairs equals the set of
        intersecting pairs."""
        if side * side < n_partitions:
            n_partitions = side * side
        left, right = pair
        grid = TileGrid(UNIT, side, side, n_partitions)
        parts_left = [[] for _ in range(n_partitions)]
        parts_right = [[] for _ in range(n_partitions)]
        for k in left:
            for pid in grid.partitions_for_rect(k):
                parts_left[pid].append(k)
        for k in right:
            for pid in grid.partitions_for_rect(k):
                parts_right[pid].append(k)
        reported = []
        for pid in range(n_partitions):
            for r in parts_left[pid]:
                for s in parts_right[pid]:
                    if not (
                        r[1] <= s[3] and s[1] <= r[3] and r[2] <= s[4] and s[2] <= r[4]
                    ):
                        continue
                    x, y = reference_point(r, s)
                    if grid.partition_of_point(x, y) == pid:
                        reported.append((r[0], s[0]))
        truth = brute_force_pairs(left, right)
        assert sorted(reported) == sorted(truth)

    @given(relation_pair(), st.integers(1, 8))
    def test_level_rpm_exactly_once(self, pair, max_level):
        """The S3J analogue: size-separated levels, <=4 replicas, pairs
        kept iff the reference point lies in the deeper cell."""
        left, right = pair
        entries_left = [
            (size_level(UNIT, k, max_level), cell, k)
            for k in left
            for cell in cells_for_rect(UNIT, k, size_level(UNIT, k, max_level))
        ]
        entries_right = [
            (size_level(UNIT, k, max_level), cell, k)
            for k in right
            for cell in cells_for_rect(UNIT, k, size_level(UNIT, k, max_level))
        ]
        reported = []
        for lvl_r, cell_r, r in entries_left:
            for lvl_s, cell_s, s in entries_right:
                # co-located on a quadtree path?
                shallow, deep = (
                    ((lvl_r, cell_r), (lvl_s, cell_s))
                    if lvl_r <= lvl_s
                    else ((lvl_s, cell_s), (lvl_r, cell_r))
                )
                shift = deep[0] - shallow[0]
                if (deep[1][0] >> shift, deep[1][1] >> shift) != shallow[1]:
                    continue
                if not (
                    r[1] <= s[3] and s[1] <= r[3] and r[2] <= s[4] and s[2] <= r[4]
                ):
                    continue
                if point_cell(UNIT, *reference_point(r, s), deep[0]) == deep[1]:
                    reported.append((r[0], s[0]))
        truth = brute_force_pairs(left, right)
        assert sorted(reported) == sorted(truth)


class TestDriversUnderHypothesis:
    @given(relation_pair(max_size=20), st.sampled_from([512, 8192]))
    def test_pbsm_rpm_any_input(self, pair, memory):
        left, right = pair
        res = PBSM(memory, dedup="rpm").run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))

    @given(relation_pair(max_size=20), st.sampled_from([512, 8192]))
    def test_pbsm_sort_any_input(self, pair, memory):
        left, right = pair
        res = PBSM(memory, dedup="sort").run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))

    @given(relation_pair(max_size=20), st.booleans())
    def test_s3j_any_input(self, pair, replicate):
        left, right = pair
        res = S3J(4096, replicate=replicate).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))

    @given(relation_pair(max_size=20), st.integers(2, 10))
    def test_s3j_max_level_irrelevant_to_result(self, pair, max_level):
        left, right = pair
        res = S3J(4096, max_level=max_level).run(left, right)
        assert sorted(res.pairs) == sorted(brute_force_pairs(left, right))
