"""Tests for the top-level public API."""

import pytest

import repro
from repro import JOIN_METHODS, spatial_join
from repro.internal import brute_force_pairs



class TestSpatialJoin:
    @pytest.mark.parametrize("method", JOIN_METHODS)
    def test_all_methods_agree(self, method, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = spatial_join(left, right, 8192, method=method)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            spatial_join([], [], 1000, method="voronoi")

    def test_kwargs_forwarded(self, small_pair):
        left, right = small_pair
        res = spatial_join(
            left, right, 8192, method="pbsm", internal="sweep_trie", dedup="sort"
        )
        assert res.stats.algorithm == "PBSM(sweep_trie,PD)"

    def test_version_exported(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_mb_helper(self):
        assert repro.mb(1) == 2**20
