"""Tests for the synthetic dataset substrate."""

import pytest

from repro.core.rect import valid_kpe
from repro.datasets import (
    clustered_rects,
    coverage,
    polyline_mbrs,
    scale_edges,
    scale_to_coverage,
    selectivity,
    summarize,
    uniform_rects,
)


class TestGenerators:
    @pytest.mark.parametrize(
        "gen", [polyline_mbrs, uniform_rects, clustered_rects]
    )
    def test_cardinality_and_validity(self, gen):
        kpes = gen(500, seed=1)
        assert len(kpes) == 500
        assert all(valid_kpe(k) for k in kpes)

    @pytest.mark.parametrize(
        "gen", [polyline_mbrs, uniform_rects, clustered_rects]
    )
    def test_deterministic_in_seed(self, gen):
        assert gen(100, seed=7) == gen(100, seed=7)
        assert gen(100, seed=7) != gen(100, seed=8)

    @pytest.mark.parametrize(
        "gen", [polyline_mbrs, uniform_rects, clustered_rects]
    )
    def test_within_unit_square(self, gen):
        for k in gen(300, seed=2):
            assert 0.0 <= k.xl <= k.xh <= 1.0
            assert 0.0 <= k.yl <= k.yh <= 1.0

    def test_start_oid(self):
        kpes = polyline_mbrs(10, seed=1, start_oid=500)
        assert [k.oid for k in kpes] == list(range(500, 510))

    def test_oids_unique(self):
        kpes = polyline_mbrs(1000, seed=3)
        assert len({k.oid for k in kpes}) == 1000

    def test_empty_generation(self):
        assert polyline_mbrs(0, seed=1) == []
        assert uniform_rects(0, seed=1) == []

    def test_polylines_are_thin_segments(self):
        """TIGER-likeness: segment MBRs are small relative to the space."""
        kpes = polyline_mbrs(1000, seed=4)
        avg_w = sum(k.xh - k.xl for k in kpes) / len(kpes)
        assert avg_w < 0.05


class TestTransforms:
    def test_scale_edges_doubles_extents(self):
        kpes = uniform_rects(50, seed=5)
        scaled = scale_edges(kpes, 2.0)
        for orig, new in zip(kpes, scaled):
            assert (new.xh - new.xl) == pytest.approx(2 * (orig.xh - orig.xl))
            assert (new.yh - new.yl) == pytest.approx(2 * (orig.yh - orig.yl))
            # centres preserved
            assert (new.xl + new.xh) / 2 == pytest.approx((orig.xl + orig.xh) / 2)

    def test_scale_edges_preserves_oids(self):
        kpes = uniform_rects(20, seed=6)
        assert [k.oid for k in scale_edges(kpes, 3.0)] == [k.oid for k in kpes]

    def test_scale_edges_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_edges([], 0.0)

    def test_scale_to_coverage_hits_target(self):
        kpes = polyline_mbrs(2000, seed=7)
        for target in (0.03, 0.22, 0.5):
            scaled = scale_to_coverage(kpes, target)
            assert coverage(scaled) == pytest.approx(target, rel=0.05)

    def test_scale_to_coverage_zero_area_needs_padding(self):
        from repro.core.rect import KPE

        lines = [KPE(i, 0.1 * i, 0.2, 0.1 * i, 0.8) for i in range(1, 5)]
        with pytest.raises(ValueError):
            scale_to_coverage(lines, 0.1)
        padded = scale_to_coverage(lines, 0.1, min_edge=1e-4)
        assert coverage(padded) == pytest.approx(0.1, rel=0.05)

    def test_coverage_p_squared_law(self):
        """Table 1: scaling edges by p multiplies coverage by ~p^2 (the
        global MBR grows slightly, so the ratio is a bit below p^2)."""
        kpes = polyline_mbrs(3000, seed=8)
        base = coverage(kpes)
        for p in (2, 3):
            grown = coverage(scale_edges(kpes, p))
            assert grown == pytest.approx(base * p * p, rel=0.15)


class TestStats:
    def test_coverage_empty(self):
        assert coverage([]) == 0.0

    def test_coverage_single_full_rect(self):
        from repro.core.rect import KPE

        assert coverage([KPE(1, 0, 0, 1, 1)]) == pytest.approx(1.0)

    def test_selectivity(self):
        assert selectivity(50, 100, 100) == pytest.approx(0.005)
        assert selectivity(5, 0, 10) == 0.0

    def test_summarize(self):
        kpes = uniform_rects(100, seed=9)
        s = summarize("X", kpes)
        assert s.name == "X"
        assert s.n_mbrs == 100
        assert s.coverage == pytest.approx(coverage(kpes))
        assert s.row()[0] == "X"

    def test_summarize_empty(self):
        s = summarize("E", [])
        assert s.n_mbrs == 0 and s.coverage == 0.0
