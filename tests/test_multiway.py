"""Tests for the cascaded multiway spatial join."""

import pytest

from repro.operators.multiway import brute_force_multiway, multiway_join
from repro.s3j import S3J

from tests.conftest import random_kpes


def three_relations(seed_base=40, n=50, max_edge=0.25):
    return [
        random_kpes(n, seed_base + i, start_oid=(i + 1) * 10_000, max_edge=max_edge)
        for i in range(3)
    ]


class TestValidation:
    def test_rejects_unknown_predicate(self):
        with pytest.raises(ValueError):
            multiway_join(three_relations(), 4096, predicate="near")

    def test_rejects_single_relation(self):
        with pytest.raises(ValueError):
            multiway_join([random_kpes(5, 1)], 4096)

    def test_empty_relation_gives_empty_result(self):
        rels = three_relations()
        rels[1] = []
        assert multiway_join(rels, 4096) == []


@pytest.mark.parametrize("predicate", ["chain", "common"])
class TestCorrectness:
    def test_matches_brute_force(self, predicate):
        rels = three_relations()
        got = multiway_join(rels, 4096, predicate=predicate)
        want = brute_force_multiway(rels, predicate)
        assert sorted(got) == sorted(want)

    def test_two_relations_reduce_to_binary_join(self, predicate):
        rels = three_relations()[:2]
        got = multiway_join(rels, 4096, predicate=predicate)
        want = brute_force_multiway(rels, predicate)
        assert sorted(got) == sorted(want)

    def test_four_relations(self, predicate):
        rels = three_relations(n=25) + [
            random_kpes(25, 99, start_oid=90_000, max_edge=0.3)
        ]
        got = multiway_join(rels, 4096, predicate=predicate)
        want = brute_force_multiway(rels, predicate)
        assert sorted(got) == sorted(want)

    def test_alternate_driver(self, predicate):
        rels = three_relations()
        got = multiway_join(
            rels,
            4096,
            predicate=predicate,
            driver_factory=lambda: S3J(4096),
        )
        want = brute_force_multiway(rels, predicate)
        assert sorted(got) == sorted(want)


class TestSemantics:
    def test_common_subset_of_chain(self):
        """A common point implies consecutive intersections, never the
        other way around."""
        rels = three_relations()
        chain = set(multiway_join(rels, 4096, predicate="chain"))
        common = set(multiway_join(rels, 4096, predicate="common"))
        assert common <= chain

    def test_tuples_have_one_oid_per_relation(self):
        rels = three_relations()
        for row in multiway_join(rels, 4096):
            assert len(row) == 3
            assert 10_000 <= row[0] < 20_000
            assert 20_000 <= row[1] < 30_000
            assert 30_000 <= row[2] < 40_000

    def test_no_duplicate_tuples(self):
        rels = three_relations()
        rows = multiway_join(rels, 4096)
        assert len(rows) == len(set(rows))
