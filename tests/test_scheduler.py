"""The scheduling policies: static LPT vs the work-stealing queue.

The claims pinned here are the ones the planner's cost model and the
skew bench lean on: greedy list scheduling (stealing) never produces a
*worse* makespan than static LPT when costs are known, and when the
estimates are wrong — the skew regime — static LPT strands workers while
stealing degrades gracefully.  ``count_steals`` is the post-hoc
reconstruction the real executors use to surface ``tasks_stolen``.
"""

import pytest

from repro.pbsm.scheduler import (
    SCHEDULERS,
    count_steals,
    lpt_assign,
    lpt_schedule,
    static_makespan,
    steal_schedule,
)

# Adversarial cost distributions for a 2..4-worker pool.
ONE_GIANT = [100.0] + [1.0] * 20
ALL_EQUAL = [5.0] * 12
GEOMETRIC = [2.0**k for k in range(10)]  # 1, 2, 4, ... 512
DISTRIBUTIONS = [ONE_GIANT, ALL_EQUAL, GEOMETRIC]


class TestLpt:
    @pytest.mark.parametrize("costs", DISTRIBUTIONS)
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_loads_conserve_work(self, costs, workers):
        makespan, loads = lpt_schedule(costs, workers)
        assert len(loads) == workers
        assert sum(loads) == pytest.approx(sum(costs))
        assert makespan == pytest.approx(max(loads))

    @pytest.mark.parametrize("costs", DISTRIBUTIONS)
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_assign_matches_schedule(self, costs, workers):
        # lpt_assign makes the same deterministic choices as
        # lpt_schedule: summing costs per assigned slot reproduces the
        # schedule's per-worker loads exactly.
        slots = lpt_assign(costs, workers)
        loads = [0.0] * workers
        for i, slot in enumerate(slots):
            loads[slot] += costs[i]
        assert sorted(loads) == pytest.approx(sorted(lpt_schedule(costs, workers)[1]))

    def test_lower_bounds(self):
        # The giant task is an absolute floor on the makespan.
        makespan, _ = lpt_schedule(ONE_GIANT, 4)
        assert makespan >= 100.0
        assert lpt_schedule([], 3) == (0.0, [0.0, 0.0, 0.0])


class TestStealing:
    @pytest.mark.parametrize("costs", DISTRIBUTIONS)
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_equals_lpt_with_exact_estimates(self, costs, workers):
        # With estimates == actuals, greedy list scheduling IS LPT.
        assert steal_schedule(costs, workers) == lpt_schedule(costs, workers)

    @pytest.mark.parametrize("costs", DISTRIBUTIONS)
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_never_worse_than_static_under_misestimation(self, costs, workers):
        # Estimates all-equal while actuals are skewed: static LPT
        # freezes a bad packing, stealing re-balances at run time.
        estimates = [1.0] * len(costs)
        stolen, _ = steal_schedule(costs, workers, estimates=estimates)
        static = static_makespan(estimates, costs, workers)
        assert stolen <= static + 1e-9

    def test_misestimation_strands_static_only(self):
        # Estimates that trick static LPT into stacking both actually-
        # giant tasks onto one worker; the stealing queue pays the first
        # giant, then routes everything else to the free worker, so the
        # static baseline costs >= 1.5x more.
        estimates = [10.0, 9.0, 8.0, 7.0]
        actuals = [100.0, 1.0, 1.0, 100.0]
        static = static_makespan(estimates, actuals, 2)
        stolen, _ = steal_schedule(actuals, 2, estimates=estimates)
        assert static / stolen >= 1.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            steal_schedule([1.0], 2, estimates=[1.0, 2.0])
        with pytest.raises(ValueError):
            static_makespan([1.0, 2.0], [1.0], 2)

    def test_schedulers_tuple(self):
        assert SCHEDULERS == ("static", "stealing")


class TestCountSteals:
    def test_plan_followed_counts_zero(self):
        sizes = [8.0, 6.0, 4.0, 2.0]
        planned = lpt_assign(sizes, 2)
        executed = [f"pid-{1000 + slot}" for slot in planned]
        assert count_steals(sizes, executed, 2) == 0

    def test_single_worker_draining_everything(self):
        # One worker executes all units of a 2-slot plan: everything
        # planned for the other slot was stolen.
        sizes = [8.0, 6.0, 4.0, 2.0]
        planned = lpt_assign(sizes, 2)
        executed = ["pid-1"] * len(sizes)
        other = sum(1 for slot in planned if slot != planned[0])
        assert count_steals(sizes, executed, 2) == other

    def test_swapped_tail_counts(self):
        sizes = [8.0, 6.0, 4.0, 2.0]
        planned = lpt_assign(sizes, 2)
        labels = {0: "pid-a", 1: "pid-b"}
        executed = [labels[slot] for slot in planned]
        executed[-1] = labels[1 - planned[-1]]  # last unit ran elsewhere
        assert count_steals(sizes, executed, 2) == 1

    def test_deterministic(self):
        sizes = [5.0, 4.0, 3.0, 2.0, 1.0]
        executed = ["t-0", "t-1", "t-0", "t-0", "t-1"]
        first = count_steals(sizes, executed, 2)
        assert all(
            count_steals(sizes, executed, 2) == first for _ in range(5)
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            count_steals([1.0, 2.0], ["a"], 2)
