"""Unit and property tests for the external merge sort."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.extsort import external_sort, sort_in_memory, sorted_dedup
from repro.io.pagefile import PageFile


def make_file(values, page_size=100, record_bytes=10):
    disk = SimulatedDisk(CostModel(page_size=page_size, pt_ratio=5.0))
    f = PageFile(disk, record_bytes=record_bytes, name="input")
    f.records.extend(values)
    return f, disk


class TestSortInMemory:
    def test_sorts(self):
        c = CpuCounters()
        assert sort_in_memory([3, 1, 2], lambda v: v, c) == [1, 2, 3]

    def test_charges_nlogn_comparisons(self):
        c = CpuCounters()
        sort_in_memory(list(range(8)), lambda v: v, c)
        assert c.comparisons == 8 * 3

    def test_empty_and_singleton_charge_nothing(self):
        c = CpuCounters()
        sort_in_memory([], lambda v: v, c)
        sort_in_memory([1], lambda v: v, c)
        assert c.comparisons == 0

    def test_stable(self):
        c = CpuCounters()
        data = [(1, "a"), (0, "b"), (1, "c")]
        out = sort_in_memory(data, lambda v: v[0], c)
        assert out == [(0, "b"), (1, "a"), (1, "c")]


class TestExternalSortInMemoryPath:
    def test_small_file_one_read_one_write(self):
        f, disk = make_file([5, 3, 9, 1])
        c = CpuCounters()
        out = external_sort(f, lambda v: v, memory_bytes=10_000, counters=c)
        assert out.records == [1, 3, 5, 9]
        total = disk.total_counters()
        assert total.read_requests == 1
        assert total.write_requests == 1

    def test_empty_file(self):
        f, disk = make_file([])
        out = external_sort(f, lambda v: v, 1000, CpuCounters())
        assert out.records == []
        assert disk.total_units() == 0.0


class TestExternalSortExternalPath:
    def test_large_file_sorted(self):
        rng = random.Random(9)
        values = [rng.randrange(10_000) for _ in range(500)]
        f, disk = make_file(values, page_size=100, record_bytes=10)
        c = CpuCounters()
        # memory of 3 pages -> 30 records per run -> ~17 runs, 2-way+ merges
        out = external_sort(f, lambda v: v, memory_bytes=300, counters=c)
        assert out.records == sorted(values)
        assert c.heap_ops > 0

    def test_external_costs_exceed_in_memory(self):
        values = list(range(500, 0, -1))
        f1, disk1 = make_file(values)
        external_sort(f1, lambda v: v, memory_bytes=100_000, counters=CpuCounters())
        f2, disk2 = make_file(values)
        external_sort(f2, lambda v: v, memory_bytes=300, counters=CpuCounters())
        assert disk2.total_units() > disk1.total_units()

    @given(st.lists(st.integers(0, 1000), max_size=300), st.integers(200, 2000))
    def test_matches_sorted_builtin(self, values, memory):
        f, _ = make_file(values)
        out = external_sort(f, lambda v: v, memory, CpuCounters())
        assert out.records == sorted(values)


class TestSortedDedup:
    def test_removes_adjacent_duplicates(self):
        f, _ = make_file([1, 1, 2, 3, 3, 3, 4])
        kept = []
        n = sorted_dedup(f, CpuCounters(), sink=kept.append)
        assert n == 4
        assert kept == [1, 2, 3, 4]

    def test_no_sink(self):
        f, _ = make_file([1, 2, 2])
        assert sorted_dedup(f, CpuCounters()) == 2

    def test_empty(self):
        f, _ = make_file([])
        assert sorted_dedup(f, CpuCounters()) == 0

    def test_all_duplicates(self):
        f, _ = make_file([7] * 50)
        assert sorted_dedup(f, CpuCounters()) == 1

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=200))
    def test_equivalent_to_set(self, pairs):
        values = sorted(pairs)
        f, _ = make_file(values)
        kept = []
        n = sorted_dedup(f, CpuCounters(), sink=kept.append)
        assert n == len(set(values))
        assert kept == sorted(set(values))
