"""Unit tests for the in-memory MX-CIF quadtree and its join (§4.1)."""

from repro.core.rect import KPE
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import brute_force_pairs
from repro.s3j.quadtree import MxCifQuadtree, quadtree_join

from tests.conftest import random_kpes

UNIT = Space(0.0, 0.0, 1.0, 1.0)


class TestTreeStructure:
    def test_insert_counts(self):
        tree = MxCifQuadtree(UNIT, 6)
        for k in random_kpes(50, 1):
            tree.insert(k)
        assert tree.size == 50
        assert len(list(tree.iter_items())) == 50

    def test_big_rect_stays_at_root(self):
        tree = MxCifQuadtree(UNIT, 6)
        tree.insert(KPE(1, 0.4, 0.4, 0.6, 0.6))  # straddles the centre
        assert len(tree.root.items) == 1
        assert not tree.root.children

    def test_small_rect_descends(self):
        tree = MxCifQuadtree(UNIT, 8)
        tree.insert(KPE(1, 0.26, 0.26, 0.27, 0.27))
        assert not tree.root.items
        assert tree.depth() >= 5

    def test_multiple_rects_per_node(self):
        """MX-CIF: any number of rectangles per node, nodes need not be
        leaves."""
        tree = MxCifQuadtree(UNIT, 6)
        tree.insert(KPE(1, 0.4, 0.4, 0.6, 0.6))
        tree.insert(KPE(2, 0.45, 0.45, 0.55, 0.55))
        tree.insert(KPE(3, 0.1, 0.1, 0.12, 0.12))
        assert len(tree.root.items) == 2
        assert tree.root.children

    def test_build_classmethod(self):
        kpes = random_kpes(30, 2)
        tree = MxCifQuadtree.build(kpes, max_level=5)
        assert tree.size == 30

    def test_depth_bounded_by_max_level(self):
        tree = MxCifQuadtree(UNIT, 3)
        for k in random_kpes(100, 3, max_edge=0.001):
            tree.insert(k)
        assert tree.depth() <= 3


class TestQuadtreeJoin:
    def test_matches_brute_force(self, small_pair):
        left, right = small_pair
        pairs = quadtree_join(left, right)
        assert sorted(pairs) == sorted(brute_force_pairs(left, right))

    def test_no_duplicates(self, small_pair):
        left, right = small_pair
        pairs = quadtree_join(left, right)
        assert len(pairs) == len(set(pairs))

    def test_empty_inputs(self):
        assert quadtree_join([], random_kpes(5, 1)) == []
        assert quadtree_join(random_kpes(5, 1), []) == []

    def test_same_cell_residents_paired_once(self):
        left = [KPE(1, 0.4, 0.4, 0.6, 0.6)]
        right = [KPE(2, 0.45, 0.45, 0.55, 0.55)]  # same root cell
        assert quadtree_join(left, right) == [(1, 2)]

    def test_ancestor_descendant_pairing(self):
        left = [KPE(1, 0.0, 0.0, 1.0, 1.0)]       # root
        right = [KPE(2, 0.1, 0.1, 0.11, 0.11)]    # deep cell
        assert quadtree_join(left, right) == [(1, 2)]

    def test_counters(self, small_pair):
        left, right = small_pair
        counters = CpuCounters()
        quadtree_join(left, right, counters)
        assert counters.intersection_tests > 0

    def test_self_join(self):
        rel = random_kpes(80, 9, max_edge=0.1)
        pairs = quadtree_join(rel, rel)
        assert sorted(pairs) == sorted(brute_force_pairs(rel, rel))

    def test_skewed(self, clustered_pair):
        left, right = clustered_pair
        pairs = quadtree_join(left, right)
        assert sorted(pairs) == sorted(brute_force_pairs(left, right))
