"""Tests for the simulated parallel PBSM and LPT scheduling."""

import pytest

from repro.core.phases import PHASE_PARTITION
from repro.internal import brute_force_pairs
from repro.pbsm.parallel import ParallelPBSM, lpt_schedule

from tests.conftest import random_kpes


class TestLptSchedule:
    def test_empty(self):
        makespan, loads = lpt_schedule([], 4)
        assert makespan == 0.0
        assert loads == [0.0] * 4

    def test_single_worker_sums(self):
        makespan, _ = lpt_schedule([3.0, 1.0, 2.0], 1)
        assert makespan == pytest.approx(6.0)

    def test_perfect_split(self):
        makespan, loads = lpt_schedule([2.0, 2.0, 2.0, 2.0], 2)
        assert makespan == pytest.approx(4.0)
        assert sorted(loads) == [4.0, 4.0]

    def test_makespan_bounds(self):
        tasks = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        makespan, loads = lpt_schedule(tasks, 3)
        assert makespan >= max(tasks)
        assert makespan >= sum(tasks) / 3
        assert sum(loads) == pytest.approx(sum(tasks))

    def test_more_workers_never_worse(self):
        tasks = [4.0, 3.0, 3.0, 2.0, 2.0, 2.0, 1.0]
        previous = float("inf")
        for workers in (1, 2, 4, 8):
            makespan, _ = lpt_schedule(tasks, workers)
            assert makespan <= previous + 1e-12
            previous = makespan


class TestParallelPBSM:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelPBSM(0)
        # Out-of-range worker counts clamp with a warning, not an error.
        with pytest.warns(RuntimeWarning, match="clamped to 1"):
            assert ParallelPBSM(1024, workers=0).workers == 1

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_matches_brute_force(self, workers, small_pair):
        left, right = small_pair
        res = ParallelPBSM(2048, workers=workers).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_empty_inputs(self):
        assert len(ParallelPBSM(1024).run([], random_kpes(5, 1))) == 0

    def test_speedup_with_more_workers(self):
        left = random_kpes(1500, 81, max_edge=0.02)
        right = random_kpes(1500, 82, start_oid=50_000, max_edge=0.02)
        memory = 3000 * 20 // 8
        seq = ParallelPBSM(memory, workers=1).run(left, right)
        par = ParallelPBSM(memory, workers=8).run(left, right)
        seq_total = sum(seq.stats.sim_seconds_by_phase.values())
        par_total = sum(par.stats.sim_seconds_by_phase.values())
        assert par_total < seq_total

    def test_partition_phase_not_parallelised(self):
        """Amdahl: the partitioning phase cost is identical regardless of
        worker count."""
        left = random_kpes(800, 83, max_edge=0.03)
        right = random_kpes(800, 84, start_oid=50_000, max_edge=0.03)
        one = ParallelPBSM(4096, workers=1).run(left, right)
        many = ParallelPBSM(4096, workers=8).run(left, right)
        assert one.stats.sim_seconds_by_phase[PHASE_PARTITION] == pytest.approx(
            many.stats.sim_seconds_by_phase[PHASE_PARTITION]
        )

    def test_at_least_one_task_per_worker(self):
        left = random_kpes(100, 85)
        right = random_kpes(100, 86, start_oid=9_000)
        res = ParallelPBSM(10**8, workers=6).run(left, right)
        assert res.stats.n_partitions >= 6
