"""Unit tests for paged files and buffered writers."""

import pytest

from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile


def small_disk(page_size=100, pt=5.0):
    return SimulatedDisk(CostModel(page_size=page_size, pt_ratio=pt))


class TestGeometry:
    def test_empty_file(self):
        f = PageFile(small_disk(), record_bytes=10)
        assert f.n_records == 0
        assert f.n_pages == 0
        assert f.n_bytes == 0

    def test_page_count(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        f.records.extend(range(25))  # 10 records per page
        assert f.n_pages == 3
        assert f.n_bytes == 250


class TestBulkIo:
    def test_append_bulk_single_request(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        f.append_bulk(list(range(25)))
        c = disk.counters["default"]
        assert c.write_requests == 1
        assert c.pages_written == 3

    def test_append_bulk_capped_requests(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        f.append_bulk(list(range(100)), max_request_pages=4)  # 10 pages
        c = disk.counters["default"]
        assert c.pages_written == 10
        assert c.write_requests == 3  # 4 + 4 + 2

    def test_append_bulk_empty_is_free(self):
        disk = small_disk()
        PageFile(disk, 10).append_bulk([])
        assert disk.total_units() == 0.0

    def test_read_all_single_request(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        f.append_bulk(list(range(25)))
        disk.reset()
        data = f.read_all()
        assert data == list(range(25))
        c = disk.counters["default"]
        assert c.read_requests == 1
        assert c.pages_read == 3

    def test_read_all_empty_is_free(self):
        disk = small_disk()
        f = PageFile(disk, 10)
        assert f.read_all() == []
        assert disk.total_units() == 0.0


class TestChunkedReads:
    def test_iter_chunks_request_per_chunk(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        f.records.extend(range(35))  # 4 pages
        chunks = list(f.iter_chunks(buffer_pages=2))
        assert [len(c) for c in chunks] == [20, 15]
        c = disk.counters["default"]
        assert c.read_requests == 2
        assert c.pages_read == 4

    def test_iter_records_preserves_order(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        f.records.extend(range(42))
        assert list(f.iter_records(buffer_pages=1)) == list(range(42))

    def test_invalid_buffer_rejected(self):
        f = PageFile(small_disk(), 10)
        with pytest.raises(ValueError):
            list(f.iter_chunks(0))


class TestPageWriter:
    def test_flush_per_buffer(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        with f.writer(buffer_pages=1) as w:
            for i in range(25):
                w.write(i)
        c = disk.counters["default"]
        # 10 + 10 + 5 records -> three one-request flushes
        assert c.write_requests == 3
        assert c.pages_written == 3
        assert f.records == list(range(25))

    def test_partial_buffer_flushed_on_close(self):
        disk = small_disk(page_size=100)
        f = PageFile(disk, record_bytes=10)
        w = f.writer()
        w.write("a")
        w.close()
        assert f.records == ["a"]
        assert disk.counters["default"].pages_written == 1

    def test_write_after_close_fails(self):
        f = PageFile(small_disk(), 10)
        w = f.writer()
        w.close()
        with pytest.raises(RuntimeError):
            w.write(1)

    def test_close_idempotent(self):
        disk = small_disk()
        f = PageFile(disk, 10)
        w = f.writer()
        w.write(1)
        w.close()
        units = disk.total_units()
        w.close()
        assert disk.total_units() == units

    def test_write_many(self):
        f = PageFile(small_disk(), 10)
        with f.writer() as w:
            w.write_many(range(5))
        assert f.records == list(range(5))

    def test_multi_page_buffer_fewer_requests(self):
        disk1 = small_disk(page_size=100)
        f1 = PageFile(disk1, 10)
        with f1.writer(buffer_pages=1) as w:
            w.write_many(range(100))
        disk4 = small_disk(page_size=100)
        f4 = PageFile(disk4, 10)
        with f4.writer(buffer_pages=4) as w:
            w.write_many(range(100))
        assert disk4.total_counters().write_requests < (
            disk1.total_counters().write_requests
        )
        assert disk4.total_counters().pages_written == (
            disk1.total_counters().pages_written
        )

    def test_clear_is_free(self):
        disk = small_disk()
        f = PageFile(disk, 10)
        f.append_bulk([1, 2, 3])
        units = disk.total_units()
        f.clear()
        assert f.n_records == 0
        assert disk.total_units() == units
