"""Unit tests for the interval trie sweep-line status structure."""

import random

import pytest

from repro.internal.interval_trie import DEFAULT_MAX_DEPTH, IntervalTrie


def collect_hits(trie, qlo, qhi, sweep_x):
    hits = []
    tests = [0]
    trie.query(qlo, qhi, sweep_x, hits.append, tests)
    return hits, tests[0]


class TestInsertQuery:
    def test_basic_overlap(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.2, 0.4, 10.0, "a")
        trie.insert(0.6, 0.8, 10.0, "b")
        hits, _ = collect_hits(trie, 0.3, 0.7, 0.0)
        assert sorted(hits) == ["a", "b"]

    def test_disjoint_not_reported(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.1, 0.2, 10.0, "a")
        hits, _ = collect_hits(trie, 0.3, 0.4, 0.0)
        assert hits == []

    def test_touching_counts(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.1, 0.3, 10.0, "a")
        hits, _ = collect_hits(trie, 0.3, 0.5, 0.0)
        assert hits == ["a"]

    def test_interval_straddling_root_mid(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.4, 0.6, 10.0, "mid")
        assert trie.root.entries  # stored at the root
        hits, _ = collect_hits(trie, 0.0, 0.1, 0.0)
        assert hits == []
        hits, _ = collect_hits(trie, 0.45, 0.55, 0.0)
        assert hits == ["mid"]

    def test_narrow_intervals_descend(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.1, 0.12, 10.0, "left")
        trie.insert(0.9, 0.92, 10.0, "right")
        assert not trie.root.entries
        assert trie.node_count() > 1


class TestLazyExpiry:
    def test_expired_entry_not_reported(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.2, 0.4, expire_x=1.0, payload="old")
        hits, _ = collect_hits(trie, 0.2, 0.4, sweep_x=2.0)
        assert hits == []

    def test_expired_entry_compacted_out(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.4, 0.6, expire_x=1.0, payload="old")
        assert trie.size == 1
        collect_hits(trie, 0.4, 0.6, sweep_x=2.0)
        assert trie.size == 0
        assert not trie.root.entries

    def test_entry_alive_at_exact_expiry(self):
        """Closed-rectangle semantics: expire only strictly past xh."""
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.2, 0.4, expire_x=1.0, payload="edge")
        hits, _ = collect_hits(trie, 0.2, 0.4, sweep_x=1.0)
        assert hits == ["edge"]

    def test_live_entries_listing(self):
        trie = IntervalTrie(0.0, 1.0)
        trie.insert(0.1, 0.2, 1.0, "a")
        trie.insert(0.3, 0.4, 3.0, "b")
        live = trie.live_entries(2.0)
        assert [e[3] for e in live] == ["b"]


class TestStructure:
    def test_depth_bounded(self):
        trie = IntervalTrie(0.0, 1.0, max_depth=3)
        # A point interval would descend forever without the bound.
        trie.insert(0.123456, 0.123456, 10.0, "pt")
        assert trie.node_count() <= 2 ** 4

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            IntervalTrie(1.0, 0.0)

    def test_degenerate_range_widened(self):
        trie = IntervalTrie(0.5, 0.5)
        trie.insert(0.5, 0.5, 1.0, "a")
        hits, _ = collect_hits(trie, 0.5, 0.5, 0.0)
        assert hits == ["a"]

    def test_ops_counted(self):
        trie = IntervalTrie(0.0, 1.0)
        before = trie.ops
        trie.insert(0.1, 0.11, 1.0, "a")
        assert trie.ops > before


class TestAgainstBruteForce:
    def test_randomized_queries_match_linear_scan(self):
        """Queries with a monotone sweep position (the real usage pattern)
        must match a brute-force scan over the non-expired entries."""
        rng = random.Random(123)
        trie = IntervalTrie(0.0, 1.0, max_depth=DEFAULT_MAX_DEPTH)
        reference = []
        for i in range(300):
            lo = rng.random()
            hi = min(1.0, lo + rng.random() * 0.2)
            expire = rng.random() * 10
            trie.insert(lo, hi, expire, i)
            reference.append((lo, hi, expire, i))
        sweeps = sorted(rng.random() * 10 for _ in range(100))
        for sweep in sweeps:
            qlo = rng.random()
            qhi = min(1.0, qlo + rng.random() * 0.3)
            hits, _ = collect_hits(trie, qlo, qhi, sweep)
            expected = [
                payload
                for lo, hi, expire, payload in reference
                if expire >= sweep and lo <= qhi and qlo <= hi
            ]
            assert sorted(hits) == sorted(expected)
