"""Tests for the stats report formatter and verification utilities."""

import pytest

from repro import (
    PBSM,
    VerificationError,
    results_consistent,
    verify_driver,
    verify_result,
)
from repro.core.report import format_stats
from repro.core.result import JoinStats

from tests.conftest import random_kpes


class TestFormatStats:
    def _stats(self):
        left = random_kpes(150, 1, max_edge=0.08)
        right = random_kpes(150, 2, start_oid=9_000, max_edge=0.08)
        return PBSM(2048).run(left, right).stats

    def test_contains_headline_fields(self):
        text = format_stats(self._stats())
        assert "algorithm" in text
        assert "PBSM" in text
        assert "results" in text
        assert "io units" in text
        assert "simulated seconds" in text

    def test_verbose_adds_phases(self):
        stats = self._stats()
        brief = format_stats(stats, verbose=False)
        verbose = format_stats(stats, verbose=True)
        assert "per-phase simulated seconds:" not in brief
        assert "per-phase simulated seconds:" in verbose
        assert "per-phase operation counts:" in verbose
        assert "partition" in verbose

    def test_empty_stats_render(self):
        text = format_stats(JoinStats(algorithm="X"))
        assert "algorithm          X" in text

    def test_conditional_lines(self):
        stats = JoinStats(algorithm="Y", duplicates_sorted_out=5, memory_overruns=2)
        text = format_stats(stats)
        assert "duplicates (sort)  5" in text
        assert "memory overruns    2" in text
        assert "duplicates (RPM)" not in text


class TestVerify:
    def test_accepts_correct_result(self, small_pair):
        left, right = small_pair
        result = verify_driver(PBSM(2048), left, right)
        assert len(result) > 0

    def test_rejects_missing_pair(self, small_pair):
        left, right = small_pair
        result = PBSM(2048).run(left, right)
        result.pairs.pop()
        with pytest.raises(VerificationError, match="mismatch"):
            verify_result(result, left, right)

    def test_rejects_extra_pair(self, small_pair):
        left, right = small_pair
        result = PBSM(2048).run(left, right)
        result.pairs.append((-1, -2))
        with pytest.raises(VerificationError, match="mismatch"):
            verify_result(result, left, right)

    def test_rejects_duplicates(self, small_pair):
        left, right = small_pair
        result = PBSM(2048).run(left, right)
        result.pairs.append(result.pairs[0])
        with pytest.raises(VerificationError, match="duplicate"):
            verify_result(result, left, right)

    def test_duplicate_check_can_be_disabled(self, small_pair):
        left, right = small_pair
        result = PBSM(2048).run(left, right)
        result.pairs.append(result.pairs[0])
        verify_result(result, left, right, check_duplicates=False)

    def test_results_consistent(self, small_pair):
        left, right = small_pair
        a = PBSM(2048).run(left, right)
        b = PBSM(4096, internal="sweep_trie").run(left, right)
        assert results_consistent(a, b)
        b.pairs.pop()
        assert not results_consistent(a, b)
        assert results_consistent()
