"""Unit tests for the columnar kernel package (repro.kernels)."""

import pytest

from repro.core.rect import KPE
from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.extsort import XlSorted
from repro.kernels.backend import (
    HAVE_NUMPY,
    active_backend,
    cpu_count,
    get_numpy,
    numpy_backend,
    numpy_enabled,
    python_backend,
    require_numpy,
)
from repro.kernels.columnar import ColumnarRelation
from repro.kernels.sweep import (
    STRIPE_MIN_RECORDS,
    _stripe_count,
    _stripe_layout,
    forward_scan_batches,
    python_forward_scan,
    sorted_columns,
    sweep_numpy_join,
)

from tests.conftest import random_kpes

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@pytest.fixture(autouse=True)
def _numpy_path_on():
    """Force the numpy gate on for these kernel-internal unit tests.

    REPRO_DISABLE_NUMPY exists to exercise *driver-level* fallbacks; the
    tests here poke the vectorized internals directly, so they re-enable
    the gate (a no-op when numpy is genuinely absent).  Tests that want
    the fallback enter ``python_backend()`` themselves — nested contexts
    override this fixture.
    """
    with numpy_backend():
        yield


def collect(fn, left, right):
    counters = CpuCounters()
    pairs = []
    fn(left, right, lambda r, s: pairs.append((r[0], s[0])), counters)
    return pairs, counters


class TestBackendGate:
    def test_python_backend_context(self):
        with python_backend():
            assert not numpy_enabled()
            assert active_backend() == "python"
            assert get_numpy() is None

    def test_numpy_backend_context(self):
        with numpy_backend():
            assert numpy_enabled() == HAVE_NUMPY
            if HAVE_NUMPY:
                assert active_backend() == "numpy"

    def test_require_numpy_raises_when_disabled(self):
        with python_backend():
            with pytest.raises(RuntimeError):
                require_numpy()

    def test_gate_restored_after_context(self):
        before = numpy_enabled()
        with python_backend():
            pass
        assert numpy_enabled() == before

    def test_cpu_count_positive(self):
        assert cpu_count() >= 1


@needs_numpy
class TestColumnarRelation:
    def test_round_trip_is_loss_free(self):
        kpes = random_kpes(100, seed=9)
        cols = ColumnarRelation.from_kpes(kpes)
        assert cols.to_kpes() == [KPE(*k) for k in kpes]

    def test_oids_stay_exact_integers(self):
        kpes = [KPE(2**40 + i, 0.1, 0.2, 0.3, 0.4) for i in range(5)]
        cols = ColumnarRelation.from_kpes(kpes)
        assert cols.oid.tolist() == [2**40 + i for i in range(5)]

    def test_empty_relation(self):
        cols = ColumnarRelation.from_kpes([])
        assert cols.n == 0 and len(cols) == 0
        assert cols.to_kpes() == []

    def test_sort_by_xl_is_stable(self):
        kpes = [KPE(i, 0.5, i / 10.0, 0.6, 1.0) for i in range(10)]
        cols = ColumnarRelation.from_kpes(kpes).sort_by_xl()
        # Equal xl keys keep their input order.
        assert cols.oid.tolist() == list(range(10))
        assert cols.sorted_by_xl

    def test_sorted_columns_trusts_flagged_inputs(self):
        kpes = XlSorted(sorted(random_kpes(50, seed=1), key=lambda k: k[1]))
        counters = CpuCounters()
        cols = sorted_columns(kpes, counters)
        assert cols.sorted_by_xl
        assert counters.batch_ops == 0  # no argsort charged

    def test_sorted_columns_charges_the_sort(self):
        counters = CpuCounters()
        cols = sorted_columns(random_kpes(50, seed=2), counters)
        assert cols.sorted_by_xl
        assert counters.batch_ops > 0


@needs_numpy
class TestForwardScanBatches:
    def test_rejects_unsorted_inputs(self):
        cols = ColumnarRelation.from_kpes(random_kpes(10, seed=3))
        with pytest.raises(ValueError):
            list(forward_scan_batches(cols, cols, CpuCounters()))

    def test_empty_side_yields_nothing(self):
        counters = CpuCounters()
        empty = ColumnarRelation.from_kpes([])
        empty.sorted_by_xl = True
        full = sorted_columns(random_kpes(10, seed=4), counters)
        assert list(forward_scan_batches(empty, full, counters)) == []
        assert list(forward_scan_batches(full, empty, counters)) == []

    def test_small_batch_candidates_same_pairs(self):
        counters = CpuCounters()
        a = sorted_columns(random_kpes(300, seed=5, max_edge=0.1), counters)
        b = sorted_columns(
            random_kpes(300, seed=6, start_oid=1000, max_edge=0.1), counters
        )
        big = set()
        for ai, bi in forward_scan_batches(a, b, counters):
            big.update(zip(ai.tolist(), bi.tolist()))
        small = set()
        for ai, bi in forward_scan_batches(a, b, counters, batch_candidates=64):
            small.update(zip(ai.tolist(), bi.tolist()))
        assert small == big

    def test_batch_ops_charged(self):
        counters = CpuCounters()
        a = sorted_columns(random_kpes(200, seed=7, max_edge=0.2), counters)
        b = sorted_columns(
            random_kpes(200, seed=8, start_oid=1000, max_edge=0.2), counters
        )
        counters = CpuCounters()
        list(forward_scan_batches(a, b, counters))
        assert counters.batch_ops > 0
        assert counters.intersection_tests == 0  # batch currency only


@needs_numpy
class TestStriping:
    def test_small_inputs_use_one_stripe(self):
        np = require_numpy()
        counters = CpuCounters()
        a = sorted_columns(random_kpes(100, seed=1), counters)
        b = sorted_columns(random_kpes(100, seed=2), counters)
        assert _stripe_count(np, a, b, 1.0) == 1

    def test_large_inputs_stripe(self):
        np = require_numpy()
        counters = CpuCounters()
        n = STRIPE_MIN_RECORDS
        a = sorted_columns(random_kpes(n, seed=3, max_edge=0.01), counters)
        b = sorted_columns(random_kpes(n, seed=4, max_edge=0.01), counters)
        assert _stripe_count(np, a, b, 1.0) > 1

    def test_tall_rectangles_cap_replication(self):
        np = require_numpy()
        counters = CpuCounters()
        # Rectangles spanning most of the y axis: striping would replicate
        # every record into every stripe, so the cap must kick in.
        tall = [
            KPE(i, i / 10_000.0, 0.0, i / 10_000.0 + 0.001, 0.9)
            for i in range(STRIPE_MIN_RECORDS)
        ]
        cols = sorted_columns(tall, counters)
        assert _stripe_count(np, cols, cols, 1.0) == 1

    def test_stripe_layout_covers_every_overlapped_stripe(self):
        np = require_numpy()
        counters = CpuCounters()
        kpes = [
            KPE(0, 0.0, 0.05, 1.0, 0.05),  # stripe 0 only
            KPE(1, 0.0, 0.15, 1.0, 0.38),  # stripes 1..3
            KPE(2, 0.0, 0.95, 1.0, 1.0),   # clipped into the last stripe
        ]
        cols = sorted_columns(kpes, counters)
        k = 10
        orig, bounds, slo = _stripe_layout(np, cols, 0.0, k / 1.0, k, counters)
        assert slo.tolist() == [0, 1, 9]
        members = {
            s: orig[bounds[s] : bounds[s + 1]].tolist() for s in range(k)
        }
        assert members[0] == [0]
        assert members[1] == [1] and members[2] == [1] and members[3] == [1]
        assert members[9] == [2]
        assert all(members[s] == [] for s in (4, 5, 6, 7, 8))

    def test_striped_and_unstriped_agree(self):
        # Past STRIPE_MIN_RECORDS the kernel stripes; the pair set must
        # match the plain python scan bit for bit.
        n = STRIPE_MIN_RECORDS
        left = random_kpes(n, seed=5, max_edge=0.01)
        right = random_kpes(n, seed=6, start_oid=10**6, max_edge=0.01)
        got, counters = collect(sweep_numpy_join, left, right)
        want, _ = collect(python_forward_scan, left, right)
        assert sorted(got) == sorted(want)
        assert counters.batch_ops > 0


class TestPythonFallback:
    def test_fallback_used_when_backend_off(self):
        left = random_kpes(80, seed=11, max_edge=0.1)
        right = random_kpes(80, seed=12, start_oid=500, max_edge=0.1)
        with python_backend():
            pairs, counters = collect(sweep_numpy_join, left, right)
        assert counters.intersection_tests > 0
        assert counters.batch_ops == 0
        want, _ = collect(python_forward_scan, left, right)
        assert pairs == want

    def test_empty_inputs(self):
        with python_backend():
            pairs, _ = collect(sweep_numpy_join, [], random_kpes(5, seed=1))
        assert pairs == []


class TestCostModelCurrency:
    def test_batch_ops_priced_into_cpu_seconds(self):
        cost = CostModel()
        counters = CpuCounters(batch_ops=10**6)
        assert cost.cpu_seconds(counters) == pytest.approx(
            10**6 * cost.batch_op_seconds
        )

    def test_cpu_seconds_from_counts_accepts_batch_ops(self):
        cost = CostModel()
        assert cost.cpu_seconds_from_counts(batch_ops=2.0) == pytest.approx(
            2.0 * cost.batch_op_seconds
        )

    def test_total_ops_includes_batch_ops(self):
        counters = CpuCounters(batch_ops=7)
        assert counters.total_ops() >= 7


class TestPlannerIntegration:
    def test_sweep_numpy_enumerated_only_with_numpy(self):
        from repro.planner.enumerate import enumerate_candidates
        from repro.planner.stats import profile_join

        jp = profile_join(
            random_kpes(300, seed=31, max_edge=0.05),
            random_kpes(300, seed=32, start_oid=10**4, max_edge=0.05),
        )

        def names(cands):
            return {
                c.kwargs.get("internal")
                for c in cands
                if c.method == "pbsm"
            }

        with python_backend():
            assert "sweep_numpy" not in names(
                enumerate_candidates(jp, 10**6)
            )
        if HAVE_NUMPY:
            with numpy_backend():
                assert "sweep_numpy" in names(
                    enumerate_candidates(jp, 10**6)
                )
