"""Unit tests for CPU counters, phase timers, and join statistics."""

import time

import pytest

from repro.core.result import JoinResult, JoinStats, empty_result
from repro.core.stats import CpuCounters, PhaseTimer, merge_counters


class TestCpuCounters:
    def test_starts_at_zero(self):
        c = CpuCounters()
        assert c.total_ops() == 0
        assert all(v == 0 for v in c.as_dict().values())

    def test_add_accumulates(self):
        a = CpuCounters(intersection_tests=5, comparisons=2)
        b = CpuCounters(intersection_tests=1, heap_ops=7)
        a.add(b)
        assert a.intersection_tests == 6
        assert a.comparisons == 2
        assert a.heap_ops == 7

    def test_reset(self):
        c = CpuCounters(intersection_tests=9, structure_ops=3)
        c.reset()
        assert c.total_ops() == 0

    def test_merge_counters(self):
        merged = merge_counters(
            CpuCounters(comparisons=1),
            CpuCounters(comparisons=2, code_computations=5),
        )
        assert merged.comparisons == 3
        assert merged.code_computations == 5

    def test_total_ops_excludes_result_tallies(self):
        c = CpuCounters(results_reported=100, duplicates_suppressed=50)
        assert c.total_ops() == 0

    def test_as_dict_round_trips_fields(self):
        c = CpuCounters(intersection_tests=1, refpoint_tests=2)
        d = c.as_dict()
        assert d["intersection_tests"] == 1
        assert d["refpoint_tests"] == 2


class TestPhaseTimer:
    def test_accumulates_across_phases(self):
        timer = PhaseTimer()
        with timer.time("a"):
            time.sleep(0.002)
        with timer.time("b"):
            time.sleep(0.001)
        with timer.time("a"):
            pass
        assert timer.seconds["a"] >= 0.002
        assert timer.seconds["b"] >= 0.001
        assert timer.total() == pytest.approx(
            timer.seconds["a"] + timer.seconds["b"]
        )


class TestJoinStats:
    def test_replication_rate(self):
        s = JoinStats(n_left=100, n_right=100, records_partitioned=250)
        assert s.replication_rate == pytest.approx(1.25)

    def test_replication_rate_empty_inputs(self):
        assert JoinStats().replication_rate == 0.0

    def test_selectivity(self):
        s = JoinStats(n_left=10, n_right=20, n_results=4)
        assert s.selectivity() == pytest.approx(0.02)

    def test_selectivity_empty(self):
        assert JoinStats().selectivity() == 0.0

    def test_sim_seconds_sums_io_and_cpu(self):
        s = JoinStats(sim_io_seconds=1.5, sim_cpu_seconds=0.5)
        assert s.sim_seconds == pytest.approx(2.0)

    def test_io_units_sums_phases(self):
        s = JoinStats(io_units_by_phase={"a": 10.0, "b": 4.0})
        assert s.io_units == pytest.approx(14.0)


class TestJoinResult:
    def test_pair_set_and_len(self):
        r = JoinResult(pairs=[(1, 2), (3, 4), (1, 2)], stats=JoinStats())
        assert len(r) == 3
        assert r.pair_set() == {(1, 2), (3, 4)}

    def test_has_duplicates(self):
        assert JoinResult(pairs=[(1, 2), (1, 2)], stats=JoinStats()).has_duplicates()
        assert not JoinResult(pairs=[(1, 2), (2, 1)], stats=JoinStats()).has_duplicates()

    def test_empty_result(self):
        r = empty_result("X", 5, 6)
        assert len(r) == 0
        assert r.stats.algorithm == "X"
        assert r.stats.n_left == 5
        assert r.stats.n_right == 6
