"""Unit and property tests for the Z (Peano/Morton) curve."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sfc.zorder import z_decode, z_encode


class TestZEncodeBasics:
    def test_origin(self):
        assert z_encode(0, 0, 4) == 0

    def test_level1_quadrants(self):
        # bit 0 <- x, bit 1 <- y
        assert z_encode(0, 0, 1) == 0
        assert z_encode(1, 0, 1) == 1
        assert z_encode(0, 1, 1) == 2
        assert z_encode(1, 1, 1) == 3

    def test_known_interleave(self):
        # x=0b101, y=0b011 -> code 0b011011 -> y1 x1 pairs ...
        assert z_encode(0b101, 0b011, 3) == 0b011011

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            z_encode(4, 0, 2)
        with pytest.raises(ValueError):
            z_encode(0, -1, 2)

    def test_decode_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            z_decode(16, 2)

    def test_wide_coordinates(self):
        # beyond one byte: exercises the multi-chunk path
        ix, iy = 0x1234, 0xABC
        assert z_decode(z_encode(ix, iy, 16), 16) == (ix, iy)


@st.composite
def coords_with_bits(draw):
    bits = draw(st.integers(1, 20))
    ix = draw(st.integers(0, (1 << bits) - 1))
    iy = draw(st.integers(0, (1 << bits) - 1))
    return ix, iy, bits


class TestZProperties:
    @given(coords_with_bits())
    def test_roundtrip(self, args):
        ix, iy, bits = args
        assert z_decode(z_encode(ix, iy, bits), bits) == (ix, iy)

    @given(coords_with_bits())
    def test_code_in_range(self, args):
        ix, iy, bits = args
        code = z_encode(ix, iy, bits)
        assert 0 <= code < (1 << (2 * bits))

    @given(coords_with_bits())
    def test_hierarchical_prefix(self, args):
        """The ancestor cell's code is the descendant's code shifted by 2 —
        the property S3J's path logic relies on."""
        ix, iy, bits = args
        if bits < 2:
            return
        assert z_encode(ix >> 1, iy >> 1, bits - 1) == z_encode(ix, iy, bits) >> 2

    @given(st.integers(1, 12))
    def test_bijective_per_level(self, bits):
        if bits > 6:
            bits = 6  # keep the exhaustive check small
        n = 1 << bits
        codes = {z_encode(x, y, bits) for x in range(n) for y in range(n)}
        assert codes == set(range(n * n))

    @given(coords_with_bits())
    def test_x_monotone_along_row(self, args):
        """Within the same 2x2 block, x+1 increases the code."""
        ix, iy, bits = args
        if ix % 2 == 1:
            ix -= 1
        assert z_encode(ix, iy, bits) < z_encode(ix + 1, iy, bits)
