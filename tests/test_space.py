"""Unit tests for repro.core.space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.space import Space


class TestSpaceConstruction:
    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Space(1.0, 0.0, 0.0, 1.0)

    def test_of_empty_is_unit_square(self):
        s = Space.of([])
        assert (s.xl, s.yl, s.xh, s.yh) == (0.0, 0.0, 1.0, 1.0)

    def test_of_single_relation(self):
        s = Space.of([KPE(1, 0.2, 0.1, 0.8, 0.9)])
        assert (s.xl, s.yl, s.xh, s.yh) == (0.2, 0.1, 0.8, 0.9)

    def test_of_two_relations_joint_mbr(self):
        s = Space.of(
            [KPE(1, 0.2, 0.5, 0.4, 0.6)],
            [KPE(2, -1.0, 0.0, 0.1, 2.0)],
        )
        assert (s.xl, s.yl, s.xh, s.yh) == (-1.0, 0.0, 0.4, 2.0)

    def test_equality_and_hash(self):
        a = Space(0, 0, 1, 1)
        b = Space(0, 0, 1, 1)
        c = Space(0, 0, 2, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestNormalisation:
    def test_corners(self):
        s = Space(2.0, 4.0, 6.0, 8.0)
        assert s.norm_x(2.0) == 0.0
        assert s.norm_x(6.0) == 1.0
        assert s.norm_y(4.0) == 0.0
        assert s.norm_y(8.0) == 1.0

    def test_midpoint(self):
        s = Space(0.0, 0.0, 2.0, 4.0)
        assert s.norm_x(1.0) == 0.5
        assert s.norm_y(2.0) == 0.5

    def test_degenerate_axis_does_not_divide_by_zero(self):
        s = Space(1.0, 1.0, 1.0, 5.0)
        assert s.norm_x(1.0) == 0.0
        assert s.norm_y(3.0) == 0.5

    def test_contains_closed(self):
        s = Space(0.0, 0.0, 1.0, 1.0)
        assert s.contains(0.0, 0.0)
        assert s.contains(1.0, 1.0)
        assert not s.contains(1.1, 0.5)

    @given(
        st.floats(-10, 10, allow_nan=False),
        st.floats(0.001, 10, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    )
    def test_norm_roundtrip(self, lo, width, t):
        s = Space(lo, 0.0, lo + width, 1.0)
        x = lo + t * width
        assert s.norm_x(x) == pytest.approx(t, abs=1e-9)
