"""Tests for the operator-tree layer and the pipelining argument."""

import pytest

from repro.internal import brute_force_pairs
from repro.operators import (
    CollectOp,
    FilterOp,
    LimitOp,
    ScanOp,
    SpatialJoinOp,
    time_to_first_result,
)
from repro.pbsm import PBSM
from repro.s3j import S3J
from repro.sssj import SSSJ

from tests.conftest import random_kpes


class TestBasicOperators:
    def test_scan(self):
        assert list(ScanOp([1, 2, 3])) == [1, 2, 3]

    def test_scan_reopens(self):
        op = ScanOp([1, 2])
        assert list(op) == [1, 2]
        assert list(op) == [1, 2]

    def test_filter(self):
        op = FilterOp(ScanOp(range(10)), lambda v: v % 2 == 0)
        assert list(op) == [0, 2, 4, 6, 8]

    def test_limit(self):
        op = LimitOp(ScanOp(range(100)), 3)
        assert list(op) == [0, 1, 2]

    def test_limit_zero(self):
        assert list(LimitOp(ScanOp([1]), 0)) == []

    def test_limit_negative_rejected(self):
        with pytest.raises(ValueError):
            LimitOp(ScanOp([]), -1)

    def test_collect(self):
        op = CollectOp(ScanOp([5, 6]))
        assert list(op) == [5, 6]
        assert op.collected == [5, 6]

    def test_composed_tree(self):
        tree = LimitOp(FilterOp(ScanOp(range(100)), lambda v: v > 10), 5)
        assert list(tree) == [11, 12, 13, 14, 15]


class TestSpatialJoinOp:
    def _pair(self):
        return (
            random_kpes(150, 1, max_edge=0.06),
            random_kpes(150, 2, start_oid=9_000, max_edge=0.06),
        )

    @pytest.mark.parametrize(
        "driver_factory",
        [
            lambda: PBSM(4096, dedup="rpm"),
            lambda: PBSM(4096, dedup="sort"),
            lambda: S3J(4096),
            lambda: SSSJ(4096),
        ],
    )
    def test_operator_produces_full_result(self, driver_factory):
        left, right = self._pair()
        op = SpatialJoinOp(driver_factory(), left, right)
        pairs = list(op)
        assert set(pairs) == set(brute_force_pairs(left, right))

    def test_next_before_open_fails(self):
        op = SpatialJoinOp(PBSM(4096), [], [])
        with pytest.raises(RuntimeError):
            op.next()

    def test_limit_on_top_of_join_stops_early(self):
        """The pipelining payoff: a LIMIT above an RPM join does not need
        the whole join to finish."""
        left, right = self._pair()
        op = LimitOp(SpatialJoinOp(PBSM(4096, dedup="rpm"), left, right), 5)
        assert len(list(op)) == 5

    def test_time_to_first_result_counts(self):
        left, right = self._pair()
        first, total, n = time_to_first_result(PBSM(4096), left, right)
        assert 0 <= first <= total
        assert n == len(brute_force_pairs(left, right))

    def test_rpm_first_result_before_sort_variant(self):
        """PBSM+RPM must produce its first result earlier (relative to its
        own total) than original PBSM, whose final sort blocks."""
        left = random_kpes(1500, 3, max_edge=0.03)
        right = random_kpes(1500, 4, start_oid=50_000, max_edge=0.03)
        first_rpm, total_rpm, _ = time_to_first_result(
            PBSM(8192, dedup="rpm"), left, right
        )
        first_sort, total_sort, _ = time_to_first_result(
            PBSM(8192, dedup="sort"), left, right
        )
        assert first_rpm / total_rpm < first_sort / total_sort
