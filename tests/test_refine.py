"""Tests for the refinement step: geometry, store, and refine()."""

import random

import pytest

from repro.core.stats import CpuCounters
from repro.io.disk import SimulatedDisk
from repro.refine import (
    ConvexPolygon,
    GeometryStore,
    Polyline,
    refine,
    regular_polygon,
    segments_intersect,
)


class TestSegments:
    def test_crossing(self):
        assert segments_intersect((0, 0), (1, 1), (0, 1), (1, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (0.4, 0.4), (0.6, 0.6), (1, 1))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (0.5, 0.5), (0.5, 0.5), (1, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (0.6, 0), (0.4, 0), (1, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (0.3, 0), (0.5, 0), (1, 0))

    def test_parallel(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 0.1), (1, 0.1))


class TestPolyline:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Polyline([(0, 0)])

    def test_mbr(self):
        pl = Polyline([(0.2, 0.8), (0.5, 0.1), (0.9, 0.4)])
        assert pl.mbr() == (0.2, 0.1, 0.9, 0.8)

    def test_intersects(self):
        a = Polyline([(0, 0), (1, 1)])
        b = Polyline([(0, 1), (1, 0)])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_mbrs_overlap_but_lines_do_not(self):
        """The refinement step's raison d'etre: a filter-step false
        positive."""
        a = Polyline([(0, 0), (0.1, 0.1)])
        b = Polyline([(0.9, 0.9), (1.0, 1.0)])
        big_a = Polyline([(0, 0), (0.05, 1.0)])
        big_b = Polyline([(0.95, 0), (1.0, 1.0)])
        assert not a.intersects(b)
        assert not big_a.intersects(big_b)

    def test_no_kernel(self):
        assert Polyline([(0, 0), (1, 1)]).kernel() is None


class TestConvexPolygon:
    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (1, 1)])

    def test_contains_point(self):
        square = ConvexPolygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert square.contains_point(0.5, 0.5)
        assert square.contains_point(0.0, 0.0)  # boundary is closed
        assert not square.contains_point(1.5, 0.5)

    def test_intersects_overlapping(self):
        a = regular_polygon(0.4, 0.4, 0.2)
        b = regular_polygon(0.5, 0.5, 0.2)
        assert a.intersects(b)

    def test_intersects_containment(self):
        outer = regular_polygon(0.5, 0.5, 0.4)
        inner = regular_polygon(0.5, 0.5, 0.05)
        assert outer.intersects(inner)
        assert inner.intersects(outer)

    def test_disjoint(self):
        a = regular_polygon(0.2, 0.2, 0.1)
        b = regular_polygon(0.8, 0.8, 0.1)
        assert not a.intersects(b)

    def test_kernel_inside_polygon(self):
        poly = regular_polygon(0.5, 0.5, 0.3, sides=7)
        kernel = poly.kernel()
        assert kernel is not None
        xl, yl, xh, yh = kernel
        assert xl < xh and yl < yh
        for x in (xl, xh):
            for y in (yl, yh):
                assert poly.contains_point(x, y)

    def test_kernel_intersection_implies_exact_intersection(self):
        rng = random.Random(9)
        for _ in range(50):
            a = regular_polygon(rng.random(), rng.random(), 0.1 + rng.random() * 0.1)
            b = regular_polygon(rng.random(), rng.random(), 0.1 + rng.random() * 0.1)
            ka, kb = a.kernel(), b.kernel()
            if ka and kb and (
                ka[0] <= kb[2] and kb[0] <= ka[2] and ka[1] <= kb[3] and kb[1] <= ka[3]
            ):
                assert a.intersects(b)


class TestGeometryStore:
    def test_add_and_fetch(self):
        store = GeometryStore(SimulatedDisk())
        poly = regular_polygon(0.5, 0.5, 0.1)
        store.add(7, poly)
        assert store.fetch(7) is poly
        assert len(store) == 1

    def test_duplicate_oid_rejected(self):
        store = GeometryStore(SimulatedDisk())
        store.add(1, regular_polygon(0.5, 0.5, 0.1))
        with pytest.raises(ValueError):
            store.add(1, regular_polygon(0.5, 0.5, 0.1))

    def test_page_layout(self):
        store = GeometryStore(SimulatedDisk(), objects_per_page=4)
        for i in range(10):
            store.add(i, regular_polygon(0.5, 0.5, 0.01))
        assert store.page_of(0) == 0
        assert store.page_of(3) == 0
        assert store.page_of(4) == 1
        assert store.n_pages == 3

    def test_buffer_hit_avoids_io(self):
        disk = SimulatedDisk()
        store = GeometryStore(disk, objects_per_page=4)
        for i in range(8):
            store.add(i, regular_polygon(0.5, 0.5, 0.01))
        store.fetch(0)
        units = disk.total_units()
        store.fetch(1)  # same page: buffered
        assert disk.total_units() == units
        assert store.page_misses == 1

    def test_clustered_fetch_coalesces_requests(self):
        disk = SimulatedDisk()
        store = GeometryStore(disk, objects_per_page=1, buffer_pages=1)
        for i in range(32):
            store.add(i, regular_polygon(0.5, 0.5, 0.01))
        store.fetch_clustered(list(range(32)))
        counters = disk.total_counters()
        assert counters.pages_read == 32
        assert counters.read_requests == 1  # one contiguous run


class TestRefine:
    def _stores(self, n=60, seed=3, buffer_pages=32):
        rng = random.Random(seed)
        disk = SimulatedDisk()
        left = GeometryStore(disk, buffer_pages=buffer_pages)
        right = GeometryStore(disk, buffer_pages=buffer_pages)
        for i in range(n):
            left.add(i, regular_polygon(rng.random(), rng.random(), 0.08))
        for i in range(n):
            right.add(1000 + i, regular_polygon(rng.random(), rng.random(), 0.08))
        candidates = [
            (i, 1000 + j)
            for i in range(n)
            for j in range(n)
            if abs(i - j) < 10  # keep it small
        ]
        return left, right, candidates

    def test_modes_agree(self):
        left, right, candidates = self._stores()
        a = refine(candidates, left, right, clustered=False, use_kernels=False)
        left.reset_buffer()
        right.reset_buffer()
        b = refine(candidates, left, right, clustered=True, use_kernels=False)
        left.reset_buffer()
        right.reset_buffer()
        c = refine(candidates, left, right, clustered=False, use_kernels=True)
        assert sorted(a.pairs) == sorted(b.pairs) == sorted(c.pairs)

    def test_kernels_save_exact_tests(self):
        left, right, candidates = self._stores()
        with_k = refine(candidates, left, right, use_kernels=True)
        left.reset_buffer()
        right.reset_buffer()
        without_k = refine(candidates, left, right, use_kernels=False)
        assert with_k.stats.kernel_hits > 0
        assert with_k.stats.exact_tests < without_k.stats.exact_tests

    def test_clustered_mode_reduces_io(self):
        """The paper's §3.1 trade-off: address-ordered fetching (possible
        for the sorted candidate set of original PBSM) beats random
        fetching under a small buffer."""
        left, right, candidates = self._stores(buffer_pages=2)
        rng = random.Random(4)
        shuffled = candidates[:]
        rng.shuffle(shuffled)
        random_mode = refine(shuffled, left, right, clustered=False, use_kernels=False)
        left.reset_buffer()
        right.reset_buffer()
        clustered_mode = refine(
            shuffled, left, right, clustered=True, use_kernels=False
        )
        assert clustered_mode.stats.io_units < random_mode.stats.io_units

    def test_counters_and_stats(self):
        left, right, candidates = self._stores()
        counters = CpuCounters()
        result = refine(candidates, left, right, use_kernels=False, counters=counters)
        assert counters.intersection_tests == result.stats.exact_tests
        assert result.stats.candidates == len(candidates)
        assert 0.0 <= result.stats.false_positive_rate <= 1.0

    def test_empty_candidates(self):
        left, right, _ = self._stores()
        result = refine([], left, right)
        assert result.pairs == []
        assert result.stats.false_positive_rate == 0.0
