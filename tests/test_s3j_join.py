"""Integration tests for the full S3J driver."""

import pytest

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION, PHASE_SORT
from repro.core.rect import KPE
from repro.internal import brute_force_pairs
from repro.s3j import S3J, s3j_join

from tests.conftest import random_kpes


class TestConfiguration:
    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            S3J(0)

    def test_rejects_bad_max_level(self):
        with pytest.raises(ValueError):
            S3J(1000, max_level=0)

    def test_rejects_unknown_curve(self):
        with pytest.raises(ValueError):
            S3J(1000, curve="spiral")

    def test_algorithm_label(self):
        res = S3J(10_000, replicate=False).run(
            random_kpes(5, 1), random_kpes(5, 2, start_oid=100)
        )
        assert res.stats.algorithm == "S3J(nested_loops,orig)"


@pytest.mark.parametrize("replicate", [True, False])
@pytest.mark.parametrize("internal", ["nested_loops", "sweep_list", "sweep_trie"])
class TestCorrectness:
    def test_matches_brute_force(self, replicate, internal, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = S3J(8192, replicate=replicate, internal=internal).run(left, right)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_skewed_inputs(self, replicate, internal, clustered_pair):
        left, right = clustered_pair
        truth = set(brute_force_pairs(left, right))
        res = S3J(8192, replicate=replicate, internal=internal).run(left, right)
        assert res.pair_set() == truth
        assert not res.has_duplicates()


@pytest.mark.parametrize("curve", ["peano", "hilbert"])
class TestCurves:
    def test_correct_under_both_curves(self, curve, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = S3J(8192, curve=curve).run(left, right)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_curve_choice_does_not_change_tests_or_io(self, curve, small_pair):
        """Section 4.4.2: the curve affects neither the I/O nor the number
        of intersection tests — only the code computation cost."""
        left, right = small_pair
        res = S3J(8192, curve=curve).run(left, right)
        baseline = S3J(8192, curve="peano").run(left, right)
        assert (
            res.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"]
            == baseline.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"]
        )
        assert res.stats.io_units == pytest.approx(baseline.stats.io_units)

    def test_hilbert_costs_more_cpu_for_codes(self, curve, small_pair):
        left, right = small_pair
        if curve != "hilbert":
            pytest.skip("comparison runs once")
        hilbert = S3J(8192, curve="hilbert").run(left, right)
        peano = S3J(8192, curve="peano").run(left, right)
        assert hilbert.stats.sim_cpu_seconds > peano.stats.sim_cpu_seconds


class TestEdgeCases:
    def test_empty_inputs(self):
        assert len(S3J(1000).run([], [])) == 0
        assert len(S3J(1000).run(random_kpes(5, 1), [])) == 0

    def test_self_join(self):
        rel = random_kpes(120, 5, max_edge=0.1)
        truth = set(brute_force_pairs(rel, rel))
        res = S3J(4096).run(rel, rel)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_degenerate_rectangles(self):
        left = [
            KPE(1, 0.5, 0.5, 0.5, 0.5),
            KPE(2, 0.0, 0.5, 1.0, 0.5),
            KPE(3, 0.25, 0.25, 0.25, 0.75),
        ]
        right = [KPE(10, 0.2, 0.2, 0.8, 0.8)]
        res = S3J(4096).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_all_identical_rectangles(self):
        left = [KPE(i, 0.45, 0.45, 0.55, 0.55) for i in range(40)]
        right = [KPE(100 + i, 0.5, 0.5, 0.6, 0.6) for i in range(40)]
        res = S3J(4096).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_boundary_straddlers(self):
        """Tiny rectangles on major cell boundaries — the exact pattern
        original S3J handles badly and replication fixes."""
        eps = 1e-4
        left = [KPE(i, 0.5 - eps, 0.5 - eps, 0.5 + eps, 0.5 + eps) for i in range(10)]
        right = [KPE(100 + i, 0.5 - eps, 0.25 - eps, 0.5 + eps, 0.25 + eps) for i in range(10)]
        for replicate in (True, False):
            res = S3J(4096, replicate=replicate).run(left, right)
            assert res.pair_set() == set(brute_force_pairs(left, right))
            assert not res.has_duplicates()


class TestStatistics:
    def test_original_has_no_replication(self, small_pair):
        left, right = small_pair
        res = S3J(8192, replicate=False).run(left, right)
        assert res.stats.replicas_created == 0
        assert res.stats.replication_rate == pytest.approx(1.0)
        assert res.stats.duplicates_suppressed == 0

    def test_replicated_bounded_by_four(self, small_pair):
        left, right = small_pair
        res = S3J(8192, replicate=True).run(left, right)
        assert 1.0 <= res.stats.replication_rate <= 4.0

    def test_replication_reduces_intersection_tests(self):
        """The paper's core S3J claim (Figure 11, CPU side)."""
        left = random_kpes(800, 61, max_edge=0.01)
        right = random_kpes(800, 62, start_oid=10_000, max_edge=0.01)
        orig = S3J(16_384, replicate=False).run(left, right)
        repl = S3J(16_384, replicate=True).run(left, right)
        assert (
            repl.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"]
            < orig.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"]
        )

    def test_phases_recorded(self, small_pair):
        left, right = small_pair
        res = S3J(8192).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_PARTITION] > 0
        assert res.stats.io_units_by_phase[PHASE_JOIN] > 0
        assert PHASE_SORT in res.stats.sim_seconds_by_phase

    def test_iter_pairs_streams(self, small_pair):
        left, right = small_pair
        driver = S3J(8192)
        pairs = list(driver.iter_pairs(left, right))
        assert set(pairs) == set(brute_force_pairs(left, right))


class TestConvenienceApi:
    def test_s3j_join(self, small_pair):
        left, right = small_pair
        res = s3j_join(left, right, memory_bytes=8192, replicate=False)
        assert res.pair_set() == set(brute_force_pairs(left, right))
