"""Integration tests for the full PBSM driver."""

import pytest

from repro.core.phases import PHASE_DEDUP, PHASE_JOIN, PHASE_PARTITION
from repro.core.rect import KPE
from repro.internal import brute_force_pairs
from repro.io.costmodel import mb
from repro.pbsm import PBSM, pbsm_join

from tests.conftest import random_kpes

INTERNALS = ["sweep_list", "sweep_trie", "nested_loops", "sweep_tree"]


class TestConfiguration:
    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            PBSM(0)

    def test_rejects_unknown_dedup(self):
        with pytest.raises(ValueError):
            PBSM(1000, dedup="magic")

    def test_rejects_unknown_internal(self):
        with pytest.raises(ValueError):
            PBSM(1000, internal="quantum")

    def test_algorithm_label(self):
        res = PBSM(10_000, internal="sweep_trie", dedup="rpm").run(
            random_kpes(5, 1), random_kpes(5, 2, start_oid=100)
        )
        assert res.stats.algorithm == "PBSM(sweep_trie,RPM)"


@pytest.mark.parametrize("dedup", ["rpm", "sort"])
@pytest.mark.parametrize("internal", INTERNALS)
class TestCorrectness:
    def test_matches_brute_force(self, dedup, internal, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = PBSM(4096, internal=internal, dedup=dedup).run(left, right)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_large_memory_single_partition(self, dedup, internal, small_pair):
        left, right = small_pair
        truth = set(brute_force_pairs(left, right))
        res = PBSM(mb(64), internal=internal, dedup=dedup).run(left, right)
        assert res.stats.n_partitions == 1
        assert res.pair_set() == truth


class TestEdgeCases:
    def test_empty_inputs(self):
        assert len(PBSM(1000).run([], [])) == 0
        assert len(PBSM(1000).run(random_kpes(5, 1), [])) == 0
        assert len(PBSM(1000).run([], random_kpes(5, 1))) == 0

    def test_self_join(self):
        rel = random_kpes(120, 5, max_edge=0.1)
        truth = set(brute_force_pairs(rel, rel))
        res = PBSM(2048, dedup="rpm").run(rel, rel)
        assert res.pair_set() == truth
        assert not res.has_duplicates()

    def test_all_identical_rectangles(self):
        """Degenerate: replication cannot separate them; the repartition
        depth limit must stop the recursion and still produce the result."""
        left = [KPE(i, 0.45, 0.45, 0.55, 0.55) for i in range(60)]
        right = [KPE(100 + i, 0.5, 0.5, 0.6, 0.6) for i in range(60)]
        res = PBSM(512, dedup="rpm", max_repartition_depth=3).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()
        assert res.stats.memory_overruns > 0

    def test_single_records(self):
        left = [KPE(1, 0.1, 0.1, 0.9, 0.9)]
        right = [KPE(2, 0.5, 0.5, 0.95, 0.95)]
        res = PBSM(1000).run(left, right)
        assert res.pairs == [(1, 2)]

    def test_rpm_none_mode_reports_duplicates(self, small_pair):
        """dedup='none' is the analysis mode: duplicates stay visible."""
        left, right = small_pair
        res_none = PBSM(2048, dedup="none").run(left, right)
        truth = set(brute_force_pairs(left, right))
        assert res_none.pair_set() == truth
        assert len(res_none.pairs) >= len(truth)


class TestStatistics:
    def test_replication_accounted(self, small_pair):
        left, right = small_pair
        res = PBSM(2048).run(left, right)
        st = res.stats
        assert st.records_partitioned >= st.n_left + st.n_right
        assert st.replicas_created == st.records_partitioned - st.n_left - st.n_right
        assert st.replication_rate >= 1.0

    def test_rpm_suppression_counted(self, small_pair):
        left, right = small_pair
        res = PBSM(2048, dedup="rpm").run(left, right)
        # With several partitions and replication there must be duplicates
        # to suppress.
        assert res.stats.duplicates_suppressed > 0

    def test_sort_mode_counts_match_rpm_suppression(self, small_pair):
        """Both variants meet the same duplicates, one sorts them out, the
        other suppresses them online."""
        left, right = small_pair
        rpm = PBSM(2048, dedup="rpm").run(left, right)
        srt = PBSM(2048, dedup="sort").run(left, right)
        assert rpm.stats.duplicates_suppressed == srt.stats.duplicates_sorted_out

    def test_sort_mode_has_dedup_io_rpm_has_none(self, small_pair):
        left, right = small_pair
        rpm = PBSM(2048, dedup="rpm").run(left, right)
        srt = PBSM(2048, dedup="sort").run(left, right)
        assert rpm.stats.io_units_by_phase.get(PHASE_DEDUP, 0.0) == 0.0
        assert srt.stats.io_units_by_phase.get(PHASE_DEDUP, 0.0) > 0.0

    def test_phase_io_recorded(self, small_pair):
        left, right = small_pair
        res = PBSM(2048).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_PARTITION] > 0
        assert res.stats.io_units_by_phase[PHASE_JOIN] > 0

    def test_sim_seconds_positive(self, small_pair):
        left, right = small_pair
        res = PBSM(2048).run(left, right)
        assert res.stats.sim_io_seconds > 0
        assert res.stats.sim_cpu_seconds > 0
        assert res.stats.sim_seconds == pytest.approx(
            res.stats.sim_io_seconds + res.stats.sim_cpu_seconds
        )

    def test_peak_memory_tracked(self, small_pair):
        left, right = small_pair
        res = PBSM(4096).run(left, right)
        assert 0 < res.stats.peak_memory_bytes

    def test_repartition_triggers_on_tight_memory(self):
        rel_a = random_kpes(300, 31, max_edge=0.02)
        rel_b = random_kpes(300, 32, start_oid=9000, max_edge=0.02)
        res = PBSM(1024, t_factor=1.0, tiles_per_partition=1).run(rel_a, rel_b)
        assert res.pair_set() == set(brute_force_pairs(rel_a, rel_b))

    def test_t_factor_reduces_repartitioning(self):
        """Section 3.2.3: t > 1 avoids the borderline-P cliff."""
        rel_a = random_kpes(400, 33, max_edge=0.02)
        rel_b = random_kpes(400, 34, start_oid=9000, max_edge=0.02)
        memory = (len(rel_a) + len(rel_b)) * 20 // 2  # P ~= 2.0 borderline
        low_t = PBSM(memory, t_factor=1.0).run(rel_a, rel_b)
        high_t = PBSM(memory, t_factor=1.3).run(rel_a, rel_b)
        assert high_t.stats.repartition_events <= low_t.stats.repartition_events


class TestTileMappings:
    @pytest.mark.parametrize("mapping", ["hash", "round_robin"])
    def test_both_mappings_correct(self, mapping, small_pair):
        left, right = small_pair
        res = PBSM(2048, tile_mapping=mapping).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()


class TestConvenienceApi:
    def test_pbsm_join(self, small_pair):
        left, right = small_pair
        res = pbsm_join(left, right, memory_bytes=4096, internal="sweep_trie")
        assert res.pair_set() == set(brute_force_pairs(left, right))
