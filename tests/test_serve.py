"""Tests for the always-on join service (`repro serve`).

Everything here runs in-process: a real `JoinServer` on an ephemeral
port, spoken to by the real `ServeClient`.  The default configuration
(`workers=1`, datasets registered from inline records) needs neither
numpy nor platform shared memory, so the suite also covers the no-numpy
CI job; pinning and the persistent-pool execution path are exercised by
the `needs_shm`-gated tests at the bottom.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import spatial_join
from repro.kernels.backend import numpy_enabled
from repro.kernels.shm import shm_enabled, sweep_orphan_segments
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    AdmissionController,
    AdmissionReject,
    DatasetRegistry,
    EngineHost,
    JoinServer,
    ServeClient,
    result_checksum,
)
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    paginate,
)

from .conftest import random_kpes

needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="needs numpy (the [perf] extra)"
)
needs_shm = pytest.mark.skipif(
    not shm_enabled(), reason="needs numpy and platform shared memory"
)

MEMORY = 1 << 20  # 1 MiB: forces real partitioning on the test relations

LEFT = random_kpes(300, seed=31, max_edge=0.05)
RIGHT = random_kpes(300, seed=32, start_oid=10_000, max_edge=0.05)


def run(coro):
    return asyncio.run(coro)


def make_registry() -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register("L", LEFT)
    registry.register("R", RIGHT)
    return registry


async def _started_server(**kwargs) -> JoinServer:
    registry = kwargs.pop("registry", None) or make_registry()
    engine = kwargs.pop("engine", None) or EngineHost(MEMORY, workers=1)
    admission = kwargs.pop("admission", None)
    server = JoinServer(registry, engine, admission, port=0, **kwargs)
    await server.start()
    return server


def expected_checksum() -> str:
    return result_checksum(spatial_join(LEFT, RIGHT, MEMORY, method="pbsm").pairs)


# ----------------------------------------------------------------------
# protocol primitives
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "join", "left": "L", "n": 3, "nested": {"a": [1, 2]}}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")

    def test_checksum_is_order_insensitive(self):
        pairs = [(3, 4), (1, 2), (5, 6)]
        assert result_checksum(pairs) == result_checksum(list(reversed(pairs)))
        assert result_checksum(pairs) != result_checksum(pairs[:2])

    def test_paginate_covers_everything_in_order(self):
        pairs = [(i, i + 1) for i in range(10)]
        pages = list(paginate(pairs, 4))
        assert [len(p) for p in pages] == [4, 4, 2]
        assert [tuple(row) for page in pages for row in page] == pairs

    def test_paginate_empty_result_is_no_pages(self):
        assert list(paginate([], 4)) == []


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_capacity_reject_when_full_and_queue_exhausted(self):
        async def scenario():
            ctrl = AdmissionController(max_inflight=1, max_queue=0)
            async with ctrl.slot():
                assert ctrl.inflight == 1
                with pytest.raises(AdmissionReject) as err:
                    async with ctrl.slot():
                        pass
                assert err.value.reason == "capacity"
            assert ctrl.rejects_capacity == 1
            assert ctrl.inflight == 0

        run(scenario())

    def test_queue_admits_after_release(self):
        async def scenario():
            ctrl = AdmissionController(max_inflight=1, max_queue=1)
            order = []

            async def holder():
                async with ctrl.slot():
                    order.append("first")
                    await asyncio.sleep(0.05)

            async def waiter():
                await asyncio.sleep(0.01)  # let the holder win the slot
                async with ctrl.slot():
                    order.append("second")

            await asyncio.gather(holder(), waiter())
            assert order == ["first", "second"]
            assert ctrl.rejects_capacity == 0

        run(scenario())

    def test_budget_reject(self):
        ctrl = AdmissionController(budget_seconds=0.5)
        ctrl.check_budget(0.4)  # under budget: fine
        with pytest.raises(AdmissionReject) as err:
            ctrl.check_budget(0.6)
        assert err.value.reason == "budget"
        assert ctrl.rejects_budget == 1

    def test_no_budget_means_no_budget_rejects(self):
        AdmissionController().check_budget(1e9)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)

    def test_on_change_keeps_gauges_current(self):
        seen = []

        async def scenario():
            ctrl = AdmissionController(max_inflight=1)
            ctrl.on_change = lambda c: seen.append((c.inflight, c.queue_depth))
            async with ctrl.slot():
                pass

        run(scenario())
        assert (1, 0) in seen  # while held
        assert seen[-1] == (0, 0)  # after release


# ----------------------------------------------------------------------
# dataset registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_and_lookup(self):
        registry = DatasetRegistry()
        entry = registry.register("L", LEFT)
        assert entry.n == len(LEFT)
        assert registry.get("L") is entry
        assert "L" in registry and "nope" not in registry
        assert registry.names() == ["L"]
        registry.close()

    def test_reregister_same_source_is_idempotent(self):
        registry = DatasetRegistry()
        first = registry.register("L", LEFT)
        again = registry.register("L", LEFT)
        assert again is first
        registry.close()

    def test_reregister_different_source_conflicts(self):
        registry = DatasetRegistry()
        registry.register("L", LEFT, source="records")
        with pytest.raises(ValueError):
            registry.register("L", LEFT, source="file:other.csv")
        registry.close()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            DatasetRegistry().get("missing")

    def test_pinning_follows_platform_support(self):
        registry = DatasetRegistry()
        entry = registry.register("L", LEFT)
        assert entry.pinned == shm_enabled()
        describe = entry.describe()
        assert describe["pinned"] == entry.pinned
        registry.close()
        assert not entry.pinned  # close() unlinks and clears the pin

    def test_pin_disabled_registry_never_pins(self):
        registry = DatasetRegistry(pin=False)
        entry = registry.register("L", LEFT)
        assert not entry.pinned
        registry.close()

    def test_close_is_idempotent(self):
        registry = DatasetRegistry()
        registry.register("L", LEFT)
        registry.close()
        registry.close()


# ----------------------------------------------------------------------
# latency histograms (the serve-facing MetricsRegistry extension)
# ----------------------------------------------------------------------
class TestHistogram:
    def test_observe_quantile_and_count(self):
        metrics = MetricsRegistry()
        metrics.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            metrics.observe("lat", value)
        assert metrics.histogram_count("lat") == 4
        # p50 falls in the first bucket, p99 in the last finite one.
        assert metrics.quantile("lat", 0.50) <= 0.1
        assert 1.0 < metrics.quantile("lat", 0.99) <= 10.0

    def test_empty_histogram_quantile_is_zero(self):
        metrics = MetricsRegistry()
        metrics.histogram("lat", "latency")
        assert metrics.quantile("lat", 0.99) == 0.0
        assert metrics.histogram_count("lat") == 0

    def test_render_emits_cumulative_buckets(self):
        metrics = MetricsRegistry()
        metrics.histogram("lat", "latency", buckets=(1.0, 2.0))
        metrics.observe("lat", 0.5)
        metrics.observe("lat", 1.5)
        text = metrics.render()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2\n" in text
        assert "lat_count 2" in text

    def test_name_collision_with_counter_raises(self):
        metrics = MetricsRegistry()
        metrics.counter("x", "a counter")
        with pytest.raises(ValueError):
            metrics.histogram("x", "same name")
        metrics.histogram("h", "a histogram")
        with pytest.raises(ValueError):
            metrics.counter("h", "same name")


# ----------------------------------------------------------------------
# server lifecycle and the join op
# ----------------------------------------------------------------------
class TestServer:
    def test_lifecycle_and_simple_ops(self):
        async def scenario():
            server = await _started_server()
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    ping = await client.ping()
                    assert ping["ok"] and ping["workers"] == 1
                    datasets = await client.request({"op": "datasets"})
                    assert [d["name"] for d in datasets["datasets"]] == ["L", "R"]
                    unknown = await client.request({"op": "frobnicate"})
                    assert not unknown["ok"]
                    assert unknown["error"] == "unknown_op"
            finally:
                await server.stop()

        run(scenario())

    def test_protocol_error_keeps_connection_alive(self):
        async def scenario():
            server = await _started_server()
            try:
                client = await ServeClient.connect(port=server.port)
                client._writer.write(b"{broken\n")
                await client._writer.drain()
                response = await client._read_response()
                assert not response["ok"] and response["error"] == "protocol"
                assert (await client.ping())["ok"]  # still usable
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_join_byte_parity_with_sequential_engine(self):
        expected = spatial_join(LEFT, RIGHT, MEMORY, method="pbsm")
        expected_pairs = sorted(expected.pairs)

        async def scenario():
            server = await _started_server()
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    summary, pairs = await client.join(
                        "L", "R", include_pairs=True, page_size=100
                    )
                    assert summary["ok"] and summary["done"]
                    assert summary["n_results"] == len(expected_pairs)
                    assert sorted(pairs) == expected_pairs
                    assert summary["checksum"] == result_checksum(expected.pairs)
            finally:
                await server.stop()

        run(scenario())

    def test_second_query_is_served_from_plan_cache(self):
        async def scenario():
            server = await _started_server()
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    first, _ = await client.join("L", "R")
                    second, _ = await client.join("L", "R")
                    assert not first["from_cache"]
                    assert second["from_cache"]
                    assert second["profile_spans"] == 0
                    assert second["checksum"] == first["checksum"]
                    trace = await client.trace(second["query_id"])
                    names = [span["name"] for span in trace["spans"]]
                    assert "profile" not in names
            finally:
                await server.stop()

        run(scenario())

    def test_concurrent_clients_all_get_identical_results(self):
        expected = expected_checksum()

        async def one_client(port: int) -> str:
            async with await ServeClient.connect(port=port) as client:
                summary, _ = await client.join("L", "R")
                assert summary["ok"], summary
                return summary["checksum"]

        async def scenario():
            server = await _started_server(
                admission=AdmissionController(max_inflight=2, max_queue=16)
            )
            try:
                checksums = await asyncio.gather(
                    *(one_client(server.port) for _ in range(6))
                )
                assert checksums == [expected] * 6
            finally:
                await server.stop()

        run(scenario())

    def test_unknown_dataset_is_an_error_response(self):
        async def scenario():
            server = await _started_server()
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    summary, _ = await client.join("L", "missing")
                    assert not summary["ok"]
                    assert summary["error"] == "unknown_dataset"
            finally:
                await server.stop()

        run(scenario())

    def test_budget_rejection_over_the_wire(self):
        async def scenario():
            server = await _started_server(
                admission=AdmissionController(budget_seconds=0.0)
            )
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    summary, _ = await client.join("L", "R")
                    assert not summary["ok"]
                    assert summary["error"] == "rejected"
                    assert summary["reason"] == "budget"
                    stats = await client.stats()
                    assert stats["admission"]["rejects_budget"] == 1
                    assert stats["queries"]["rejected"] == 1
            finally:
                await server.stop()

        run(scenario())

    def test_capacity_rejection_over_the_wire(self):
        async def scenario():
            server = await _started_server(
                admission=AdmissionController(max_inflight=1, max_queue=0)
            )
            # Make the planning step slow enough that concurrent queries
            # overlap deterministically while the slot is held.
            original_plan = server.engine.plan

            def slow_plan(*args, **kwargs):
                time.sleep(0.25)
                return original_plan(*args, **kwargs)

            server.engine.plan = slow_plan
            try:

                async def one_join():
                    async with await ServeClient.connect(port=server.port) as c:
                        summary, _ = await c.join("L", "R")
                        return summary

                summaries = await asyncio.gather(*(one_join() for _ in range(3)))
                outcomes = sorted(
                    s.get("reason", "ok") if not s.get("ok") else "ok"
                    for s in summaries
                )
                assert outcomes.count("ok") == 1
                assert outcomes.count("capacity") == 2
            finally:
                await server.stop()

        run(scenario())

    def test_metrics_scrape_has_serve_series(self):
        async def scenario():
            server = await _started_server()
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    await client.join("L", "R")
                    await client.join("L", "R")
                    text = await client.metrics_text()
                    assert 'repro_serve_queries_total{status="ok"} 2' in text
                    assert "repro_serve_query_seconds_bucket" in text
                    assert "repro_serve_query_seconds_count 2" in text
                    assert "repro_serve_queue_depth 0" in text
                    assert "repro_serve_datasets 2" in text
                    stats = await client.stats()
                    assert stats["latency"]["count"] == 2
                    assert stats["latency"]["p99_seconds"] >= 0.0
            finally:
                await server.stop()

        run(scenario())

    def test_shutdown_op_stops_the_serve_loop(self):
        async def scenario():
            server = await _started_server()
            loop_task = asyncio.ensure_future(server.serve_until_stopped())
            async with await ServeClient.connect(port=server.port) as client:
                response = await client.shutdown()
                assert response["ok"] and response["stopping"]
            await asyncio.wait_for(loop_task, timeout=10)

        run(scenario())


# ----------------------------------------------------------------------
# shared-memory integration: pinning, pools, and the orphan sweep
# ----------------------------------------------------------------------
@needs_shm
class TestServeShm:
    def test_registered_datasets_are_pinned_and_unpinned_on_stop(self):
        async def scenario():
            server = await _started_server()
            try:
                described = server.registry.describe()
                assert all(d["pinned"] for d in described)
                segments = [d["segment"] for d in described]
                assert all(seg for seg in segments)
            finally:
                await server.stop()
            assert all(not d["pinned"] for d in server.registry.describe())

        run(scenario())
        assert sweep_orphan_segments(include_live=True) == []

    def test_pool_and_pinned_execution_matches_sequential(self):
        """Force the parallel shared-memory candidate through the
        persistent pool + pinned-segment path and demand byte parity."""
        engine = EngineHost(MEMORY, workers=2)
        registry = make_registry()
        try:
            engine.start()
            if engine.pool is None:
                pytest.skip("worker cap forced workers=1 on this box")
            left, right = registry.get("L"), registry.get("R")
            plan = engine.plan(left, right)
            parallel = [
                c
                for c in plan.candidates
                if c.method == "pbsm"
                and "workers" in c.kwargs
                and c.kwargs.get("shared_memory")
            ]
            assert parallel, "planner enumerated no parallel shm candidate"
            plan.chosen = parallel[0]
            result = engine.execute(plan, left, right)
            expected = spatial_join(LEFT, RIGHT, MEMORY, method="pbsm")
            assert sorted(result.pairs) == sorted(expected.pairs)
            assert result.stats.shared_memory
        finally:
            engine.shutdown()
            registry.close()
        assert sweep_orphan_segments(include_live=True) == []

    def test_sweep_reaps_segment_of_a_dead_creator(self):
        """A SIGKILLed server's segments embed a dead pid; sweep reaps
        exactly those and leaves live-owner segments alone."""
        import subprocess
        import sys

        script = (
            "import sys\n"
            "sys.path.insert(0, 'src')\n"
            "from repro.kernels.backend import require_numpy\n"
            "from repro.kernels.shm import SharedColumnarStore\n"
            "np = require_numpy()\n"
            "store = SharedColumnarStore.create({'x': np.arange(4)}, track=False)\n"
            "print(store.name)\n"
        )
        orphan = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
            check=True,
        ).stdout.strip()
        import os

        assert os.path.exists(f"/dev/shm/{orphan}")
        swept = sweep_orphan_segments()
        assert orphan in swept
        assert not os.path.exists(f"/dev/shm/{orphan}")

    def test_server_stop_leaves_no_segments_behind(self):
        async def scenario():
            server = await _started_server(
                engine=EngineHost(MEMORY, workers=2)
            )
            try:
                async with await ServeClient.connect(port=server.port) as client:
                    summary, _ = await client.join("L", "R")
                    assert summary["ok"]
            finally:
                await server.stop()

        run(scenario())
        assert sweep_orphan_segments(include_live=True) == []
