"""Tests for the seeded-tree join, buffer manager, and SFC analysis."""

import pytest

from repro.core.phases import PHASE_BUILD, PHASE_JOIN
from repro.internal import brute_force_pairs
from repro.io.buffer import BufferFullError, BufferManager
from repro.io.disk import SimulatedDisk
from repro.rtree import RTree
from repro.rtree.seeded import SeededTreeJoin, seeded_tree_join
from repro.sfc.analysis import (
    curve_cost_ops,
    locality_report,
    mean_window_clusters,
    neighbor_code_gap,
)

from tests.conftest import random_kpes


class TestSeededTreeJoin:
    def test_matches_brute_force(self, small_pair):
        left, right = small_pair
        res = SeededTreeJoin(fanout=16).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_skewed(self, clustered_pair):
        left, right = clustered_pair
        res = SeededTreeJoin(fanout=8, seed_levels=2).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_empty_inputs(self):
        assert len(SeededTreeJoin().run([], random_kpes(5, 1))) == 0
        assert len(SeededTreeJoin().run(random_kpes(5, 1), [])) == 0

    def test_prebuilt_seed_tree(self, small_pair):
        left, right = small_pair
        tree = RTree.bulk_load(left, 16)
        res = SeededTreeJoin(fanout=16).run(left, right, tree_left=tree)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    @pytest.mark.parametrize("seed_levels", [1, 2, 3])
    def test_seed_depth_variants(self, seed_levels, small_pair):
        left, right = small_pair
        res = SeededTreeJoin(fanout=8, seed_levels=seed_levels).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_invalid_seed_levels(self):
        with pytest.raises(ValueError):
            SeededTreeJoin(seed_levels=0)

    def test_build_phase_charged(self, small_pair):
        left, right = small_pair
        res = SeededTreeJoin(fanout=16).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_BUILD] > 0
        assert res.stats.io_units_by_phase[PHASE_JOIN] > 0

    def test_seeded_tree_holds_all_records(self, small_pair):
        left, right = small_pair
        joiner = SeededTreeJoin(fanout=8)
        seed = RTree.bulk_load(left, 8)
        from repro.core.stats import CpuCounters

        grown = joiner.build_seeded(seed, right, CpuCounters())
        assert sorted(k[0] for k in grown.iter_kpes()) == sorted(
            k[0] for k in right
        )
        for node in grown.iter_nodes():
            assert len(node.entries) <= 8

    def test_convenience(self, small_pair):
        left, right = small_pair
        res = seeded_tree_join(left, right, fanout=32)
        assert res.pair_set() == set(brute_force_pairs(left, right))


class TestBufferManager:
    def test_pin_loads_once(self):
        disk = SimulatedDisk()
        buf = BufferManager(disk, 4)
        loads = []

        def loader(pid):
            loads.append(pid)
            return f"page{pid}"

        assert buf.pin(1, loader) == "page1"
        buf.unpin(1)
        assert buf.pin(1, loader) == "page1"
        buf.unpin(1)
        assert loads == [1]
        assert buf.hits == 1 and buf.misses == 1
        assert disk.total_counters().pages_read == 1

    def test_lru_eviction_order(self):
        buf = BufferManager(SimulatedDisk(), 2)
        buf.pin("a"); buf.unpin("a")
        buf.pin("b"); buf.unpin("b")
        buf.pin("a"); buf.unpin("a")  # refresh a
        buf.pin("c"); buf.unpin("c")  # evicts b (least recent)
        assert buf.resident("a") and buf.resident("c")
        assert not buf.resident("b")

    def test_pinned_pages_not_evicted(self):
        buf = BufferManager(SimulatedDisk(), 2)
        buf.pin("a")
        buf.pin("b")
        with pytest.raises(BufferFullError):
            buf.pin("c")
        buf.unpin("a")
        buf.pin("c")  # now fits by evicting a
        assert not buf.resident("a")

    def test_dirty_writeback_on_eviction(self):
        disk = SimulatedDisk()
        buf = BufferManager(disk, 1)
        buf.pin("a")
        buf.unpin("a", dirty=True)
        writes_before = disk.total_counters().pages_written
        buf.pin("b")
        assert disk.total_counters().pages_written == writes_before + 1
        assert buf.writebacks == 1

    def test_unpin_validation(self):
        buf = BufferManager(SimulatedDisk(), 2)
        with pytest.raises(ValueError):
            buf.unpin("ghost")
        buf.pin("a")
        buf.unpin("a")
        with pytest.raises(ValueError):
            buf.unpin("a")  # double unpin

    def test_flush(self):
        disk = SimulatedDisk()
        buf = BufferManager(disk, 4)
        for pid in ("a", "b"):
            buf.pin(pid)
            buf.unpin(pid, dirty=True)
        assert buf.flush() == 2
        assert buf.flush() == 0  # idempotent

    def test_hit_rate(self):
        buf = BufferManager(SimulatedDisk(), 4)
        assert buf.hit_rate() == 0.0
        buf.pin("a"); buf.unpin("a")
        buf.pin("a"); buf.unpin("a")
        assert buf.hit_rate() == pytest.approx(0.5)

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            BufferManager(SimulatedDisk(), 0)


class TestSfcAnalysis:
    def test_hilbert_fewer_window_clusters(self):
        """The classical Hilbert advantage, on its proper metric: fewer
        contiguous code runs per range-query window."""
        for level in (3, 4, 5):
            assert mean_window_clusters("hilbert", level) < mean_window_clusters(
                "peano", level
            )

    def test_mean_neighbor_gap_favours_z(self):
        """Counter-intuitively the *mean* adjacent-cell code gap is lower
        for Z: Hilbert trades a few huge jumps for many step-1 moves."""
        for level in (3, 4, 5):
            assert neighbor_code_gap("peano", level) < neighbor_code_gap(
                "hilbert", level
            )

    def test_window_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            mean_window_clusters("peano", 2, window=100)

    def test_z_cheaper_to_compute(self):
        """The paper's winning argument for Peano."""
        for level in (4, 8, 10, 16):
            assert curve_cost_ops("peano", level) < curve_cost_ops(
                "hilbert", level
            )

    def test_locality_report_shape(self):
        report = locality_report(level=4)
        assert set(report) == {"peano", "hilbert"}
        for metrics in report.values():
            assert metrics["neighbor_gap"] > 0
            assert metrics["ops_per_code"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbor_code_gap("peano", 0)
        with pytest.raises(ValueError):
            curve_cost_ops("dragon", 4)
