"""Tests for the paper's dataset/join catalog."""

import pytest

from repro.datasets import (
    JOINS,
    PAPER_CARDINALITY,
    PAPER_COVERAGE,
    coverage,
    dataset,
    dataset_cardinality,
    join_inputs,
    la_pair,
)


class TestDatasets:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            dataset("LA_XX")
        with pytest.raises(ValueError):
            dataset_cardinality("LA_XX")

    def test_cardinality_scales(self):
        tiny = dataset_cardinality("LA_RR", scale=0.01)
        big = dataset_cardinality("LA_RR", scale=0.1)
        assert big > tiny
        assert big == max(64, int(PAPER_CARDINALITY["LA_RR"] * 0.1))

    def test_cal_gets_extra_factor(self):
        la = dataset_cardinality("LA_RR", scale=0.1)
        cal = dataset_cardinality("CAL_ST", scale=0.1)
        # CAL is 14x LA in the paper; even with the extra factor it must
        # stay the largest dataset.
        assert cal > la

    @pytest.mark.parametrize("name", ["LA_RR", "LA_ST", "CAL_ST"])
    def test_coverage_calibrated_to_table1(self, name):
        d = dataset(name, scale=0.02)
        assert coverage(d) == pytest.approx(PAPER_COVERAGE[name], rel=0.05)

    def test_edge_scaling_applies(self):
        base = dataset("LA_RR", scale=0.02)
        grown = dataset("LA_RR", scale=0.02, p=2.0)
        assert coverage(grown) > 3.0 * coverage(base)

    def test_memoised(self):
        assert dataset("LA_RR", scale=0.02) is dataset("LA_RR", scale=0.02)


class TestJoins:
    def test_catalog_names(self):
        assert set(JOINS) == {"J1", "J2", "J3", "J4", "J5"}

    def test_unknown_join_rejected(self):
        with pytest.raises(ValueError):
            join_inputs("J9")

    def test_j1_inputs(self):
        left, right = join_inputs("J1", scale=0.02)
        assert len(left) == dataset_cardinality("LA_RR", 0.02)
        assert len(right) == dataset_cardinality("LA_ST", 0.02)

    def test_j5_is_self_join(self):
        left, right = join_inputs("J5", scale=0.02)
        assert left is right

    def test_la_pair_scaling(self):
        left1, _ = la_pair(1.0, scale=0.02)
        left3, _ = la_pair(3.0, scale=0.02)
        w1 = sum(k.xh - k.xl for k in left1)
        w3 = sum(k.xh - k.xl for k in left3)
        assert w3 == pytest.approx(3 * w1, rel=1e-6)

    def test_join_specs_match_table2(self):
        assert JOINS["J2"].p == 2.0
        assert JOINS["J4"].p == 4.0
        assert JOINS["J5"].left == JOINS["J5"].right == "CAL_ST"
