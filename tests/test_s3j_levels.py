"""Unit tests for S3J level assignment and level files."""


from repro.core.rect import KPE, SIZEOF_KPE
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.s3j.levelfile import (
    build_level_files,
    record_bytes_for_level,
    sort_level_files,
)
from repro.s3j.levels import assign_original, assign_replicated, level_histogram
from repro.sfc.locational import curve_encoder

from tests.conftest import random_kpes

UNIT = Space(0.0, 0.0, 1.0, 1.0)
Z = curve_encoder("peano")


class TestAssignOriginal:
    def test_one_entry_per_kpe(self):
        kpes = random_kpes(100, 1)
        counters = CpuCounters()
        entries = list(assign_original(kpes, UNIT, 8, Z, counters))
        assert len(entries) == len(kpes)
        assert {e[2][0] for e in entries} == {k.oid for k in kpes}

    def test_boundary_straddler_at_level_zero(self):
        k = KPE(1, 0.4999, 0.4999, 0.5001, 0.5001)
        entries = list(assign_original([k], UNIT, 8, Z, CpuCounters()))
        assert entries == [(0, 0, k)]

    def test_level_zero_code_not_computed(self):
        """Section 4.4.2: no locational code needed at level 0."""
        k = KPE(1, 0.4, 0.4, 0.6, 0.6)  # straddles the centre -> level 0
        counters = CpuCounters()
        list(assign_original([k], UNIT, 8, Z, counters))
        assert counters.code_computations == 0

    def test_deep_level_code_computed(self):
        k = KPE(1, 0.26, 0.26, 0.27, 0.27)
        counters = CpuCounters()
        entries = list(assign_original([k], UNIT, 8, Z, counters))
        assert counters.code_computations == 1
        assert entries[0][0] >= 5


class TestAssignReplicated:
    def test_at_most_four_entries_per_kpe(self):
        kpes = random_kpes(300, 2, max_edge=0.2)
        entries = list(assign_replicated(kpes, UNIT, 8, Z, CpuCounters()))
        per_oid = {}
        for level, code, kpe in entries:
            per_oid.setdefault(kpe[0], []).append((level, code))
        assert all(1 <= len(v) <= 4 for v in per_oid.values())
        # all copies of a KPE are on the same level with distinct codes
        for copies in per_oid.values():
            levels = {lv for lv, _ in copies}
            codes = [c for _, c in copies]
            assert len(levels) == 1
            assert len(codes) == len(set(codes))

    def test_small_straddler_moves_up(self):
        """The paper's Figure 9 point: a small rectangle straddling a cell
        boundary is replicated at its size level instead of sinking to
        level 0."""
        k = KPE(1, 0.4999, 0.4999, 0.5001, 0.5001)
        entries = list(assign_replicated([k], UNIT, 10, Z, CpuCounters()))
        assert all(level == 10 for level, _, _ in entries)
        assert len(entries) == 4  # straddles both axes

    def test_figure9_style_levels(self):
        """Rectangles of equal size get equal levels regardless of
        placement (r1 vs r2 of Figure 9)."""
        r1 = KPE(1, 0.24, 0.24, 0.26, 0.26)   # straddles a level-2 border
        r2 = KPE(2, 0.30, 0.30, 0.32, 0.32)   # inside one level-2 cell
        e1 = list(assign_replicated([r1], UNIT, 10, Z, CpuCounters()))
        e2 = list(assign_replicated([r2], UNIT, 10, Z, CpuCounters()))
        assert e1[0][0] == e2[0][0]

    def test_codes_charged_per_copy(self):
        k = KPE(1, 0.4999, 0.4999, 0.5001, 0.5001)
        counters = CpuCounters()
        list(assign_replicated([k], UNIT, 10, Z, counters))
        assert counters.code_computations == 4


class TestLevelHistogram:
    def test_histogram(self):
        entries = [(0, 0, None), (2, 5, None), (2, 6, None), (4, 1, None)]
        assert level_histogram(entries, 4) == [1, 0, 2, 0, 1]

    def test_replication_reduces_level0_population(self):
        """The observation that motivates Section 4.3: original S3J dumps
        many small rectangles into level 0; size separation empties it."""
        kpes = random_kpes(2000, 3, max_edge=0.02)
        orig = level_histogram(
            list(assign_original(kpes, UNIT, 8, Z, CpuCounters())), 8
        )
        repl = level_histogram(
            list(assign_replicated(kpes, UNIT, 8, Z, CpuCounters())), 8
        )
        assert repl[0] < orig[0]


class TestLevelFiles:
    def test_record_bytes_grow_with_level(self):
        assert record_bytes_for_level(0) == SIZEOF_KPE
        assert record_bytes_for_level(1) == SIZEOF_KPE + 1
        assert record_bytes_for_level(4) == SIZEOF_KPE + 1
        assert record_bytes_for_level(5) == SIZEOF_KPE + 2
        assert record_bytes_for_level(10) == SIZEOF_KPE + 3

    def test_build_level_files_routing(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        entries = [(0, 0, KPE(1, 0, 0, 1, 1)), (2, 9, KPE(2, 0, 0, 0.1, 0.1))]
        files, written = build_level_files(entries, 4, disk, "T")
        assert written == 2
        assert files[0].n_records == 1
        assert files[2].n_records == 1
        assert files[1].n_records == 0

    def test_build_charges_writes(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        kpes = random_kpes(100, 4)
        entries = assign_replicated(kpes, UNIT, 6, Z, CpuCounters())
        build_level_files(entries, 6, disk, "T")
        assert disk.total_counters().pages_written > 0

    def test_sort_level_files_orders_by_code(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        kpes = random_kpes(200, 5)
        entries = assign_replicated(kpes, UNIT, 6, Z, CpuCounters())
        files, _ = build_level_files(entries, 6, disk, "T")
        sorted_files = sort_level_files(files, 100_000, CpuCounters())
        for f in sorted_files[1:]:
            codes = [rec[0] for rec in f.records]
            assert codes == sorted(codes)

    def test_level_zero_not_resorted(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        entries = [(0, 0, KPE(i, 0.4, 0.4, 0.6, 0.6)) for i in range(20)]
        files, _ = build_level_files(entries, 3, disk, "T")
        disk.reset()
        sorted_files = sort_level_files(files, 100_000, CpuCounters())
        assert sorted_files[0] is files[0]
        assert disk.total_units() == 0.0
