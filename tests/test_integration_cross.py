"""Cross-algorithm integration: every driver must return the identical
result set, with zero duplicates, on a spread of workloads and budgets.

This is the suite's strongest guarantee: PBSM (both dedup modes, several
internal algorithms), S3J (both variants), SSSJ, the in-memory quadtree
join and brute force all implement the same filter-step semantics.
"""

import pytest

from repro.core.rect import KPE
from repro.datasets import clustered_rects, polyline_mbrs, scale_edges, uniform_rects
from repro.internal import brute_force_pairs
from repro.pbsm import PBSM
from repro.rtree import RTreeJoin
from repro.s3j import S3J, quadtree_join
from repro.shj import SpatialHashJoin
from repro.sssj import SSSJ

from tests.conftest import random_kpes


def all_drivers(memory):
    return [
        PBSM(memory, internal="sweep_list", dedup="rpm"),
        PBSM(memory, internal="sweep_trie", dedup="rpm"),
        PBSM(memory, internal="nested_loops", dedup="sort"),
        PBSM(memory, internal="sweep_tree", dedup="sort"),
        S3J(memory, replicate=True, internal="nested_loops"),
        S3J(memory, replicate=True, internal="sweep_list"),
        S3J(memory, replicate=False, internal="nested_loops"),
        S3J(memory, replicate=True, curve="hilbert"),
        SSSJ(memory, internal="sweep_list"),
        SpatialHashJoin(memory),
        RTreeJoin(fanout=16),
    ]


WORKLOADS = {
    "random": lambda: (
        random_kpes(250, 101, max_edge=0.05),
        random_kpes(250, 102, start_oid=10_000, max_edge=0.05),
    ),
    "uniform": lambda: (
        uniform_rects(250, 103, mean_edge=0.02),
        uniform_rects(250, 104, start_oid=10_000, mean_edge=0.02),
    ),
    "clustered": lambda: (
        clustered_rects(250, 105),
        clustered_rects(250, 106, start_oid=10_000),
    ),
    "tiger_like": lambda: (
        polyline_mbrs(250, 107),
        polyline_mbrs(250, 108, start_oid=10_000),
    ),
    "scaled_up_coverage": lambda: (
        scale_edges(polyline_mbrs(200, 109), 10.0),
        scale_edges(polyline_mbrs(200, 110, start_oid=10_000), 10.0),
    ),
    "mixed_sizes": lambda: (
        random_kpes(100, 111, max_edge=0.3) + random_kpes(100, 112, start_oid=500, max_edge=0.005),
        random_kpes(100, 113, start_oid=20_000, max_edge=0.3)
        + random_kpes(100, 114, start_oid=20_500, max_edge=0.005),
    ),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("memory", [1024, 16_384])
def test_all_algorithms_agree(workload, memory):
    left, right = WORKLOADS[workload]()
    truth = set(brute_force_pairs(left, right))
    assert set(quadtree_join(left, right)) == truth
    for driver in all_drivers(memory):
        res = driver.run(left, right)
        label = res.stats.algorithm
        assert res.pair_set() == truth, f"{label} wrong result set on {workload}"
        assert not res.has_duplicates(), f"{label} produced duplicates on {workload}"
        assert res.stats.n_results == len(res.pairs)


def test_self_join_all_algorithms():
    rel = polyline_mbrs(300, 201)
    truth = set(brute_force_pairs(rel, rel))
    for driver in all_drivers(4096):
        res = driver.run(rel, rel)
        assert res.pair_set() == truth, res.stats.algorithm
        assert not res.has_duplicates(), res.stats.algorithm


def test_extreme_overlap_workload():
    """Everything overlaps everything: maximal duplicate pressure."""
    left = [KPE(i, 0.3, 0.3, 0.7, 0.7) for i in range(25)]
    right = [KPE(100 + i, 0.4, 0.4, 0.8, 0.8) for i in range(25)]
    truth = set(brute_force_pairs(left, right))
    assert len(truth) == 625
    for driver in all_drivers(512):
        res = driver.run(left, right)
        assert res.pair_set() == truth, res.stats.algorithm
        assert not res.has_duplicates(), res.stats.algorithm


def test_no_overlap_workload():
    left = [KPE(i, i * 0.01, 0.0, i * 0.01 + 0.004, 0.4) for i in range(50)]
    right = [KPE(100 + i, i * 0.01 + 0.005, 0.6, i * 0.01 + 0.009, 0.9) for i in range(50)]
    for driver in all_drivers(1024):
        res = driver.run(left, right)
        assert len(res) == 0, res.stats.algorithm
