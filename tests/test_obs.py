"""The observability layer: spans, export, metrics, and reconciliation.

The contract under test is the one ``docs/observability.md`` documents:
every driver derives ``JoinStats.wall_seconds_by_phase`` from the spans
it records, so with a recording tracer attached the trace and the stats
agree *exactly* for sequential drivers; the process executor ships
per-task wall times across the pool boundary so worker busy time is
visible; and the whole layer collapses to near-nothing when tracing is
off (the :data:`NULL_TRACER` default).
"""

import json

import pytest

from repro import spatial_join
from repro.core.phases import ALL_PHASES, PHASE_JOIN, PHASE_PARTITION
from repro.core.report import format_stats, stats_to_dict
from repro.core.stats import CpuCounters
from repro.io.costmodel import mb
from repro.obs import (
    KIND_PHASE,
    KIND_PLAN,
    KIND_RUN,
    KIND_SECTION,
    KIND_TASK,
    KIND_WORKER,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TraceValidationError,
    phase_totals,
    read_trace,
    summarize_trace,
    validate_span_dict,
    worker_busy,
)
from repro.pbsm import PBSM, ParallelPBSM
from repro.s3j import S3J
from repro.shj import SpatialHashJoin
from repro.sssj import SSSJ

from tests.conftest import random_kpes


# ----------------------------------------------------------------------
# tracer mechanics
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer", kind=KIND_RUN) as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert tracer.current_span_id is None
        spans = {s.name: s for s in tracer.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].t_start >= spans["outer"].t_start
        assert spans["inner"].t_end <= spans["outer"].t_end

    def test_tags_drop_none_values(self):
        tracer = Tracer()
        with tracer.span("s", kind=KIND_SECTION, kept="x", dropped=None):
            pass
        assert tracer.spans[0].tags == {"kept": "x"}

    def test_cpu_counter_deltas_attach(self):
        tracer = Tracer()
        cpu = CpuCounters()
        cpu.comparisons = 100  # pre-existing counts must not leak in
        with tracer.span("p", cpu=cpu):
            cpu.comparisons += 7
            cpu.intersection_tests += 3
        counters = tracer.spans[0].counters
        assert counters["comparisons"] == 7
        assert counters["intersection_tests"] == 3

    def test_add_span_places_externally_timed_span(self):
        tracer = Tracer()
        with tracer.span("run", kind=KIND_RUN):
            span = tracer.add_span(
                "task", 0.25, counters={"zero": 0, "kept": 2}, worker="w1"
            )
        assert span.kind == KIND_TASK
        assert span.parent_id == tracer.spans[-1].span_id or span in tracer.spans
        assert span.wall_seconds == pytest.approx(0.25)
        assert span.counters == {"kept": 2}  # zero-valued dropped
        assert span.tags == {"worker": "w1"}

    def test_wall_by_phase_aggregates_phase_spans_only(self):
        tracer = Tracer()
        tracer.add_span(PHASE_JOIN, 0.5, kind=KIND_PHASE)
        tracer.add_span(PHASE_JOIN, 0.25, kind=KIND_PHASE)
        tracer.add_span(PHASE_JOIN, 9.0, kind=KIND_TASK)  # not a phase
        totals = tracer.wall_by_phase()
        assert totals == {PHASE_JOIN: pytest.approx(0.75)}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError
        assert len(tracer.spans) == 1
        assert tracer.current_span_id is None


class TestNullTracer:
    def test_not_recording_but_spans_still_time(self):
        assert NULL_TRACER.recording is False
        with NULL_TRACER.span("p") as sp:
            pass
        assert sp.wall_seconds >= 0.0
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.add_span("t", 1.0) is None
        assert NULL_TRACER.wall_by_phase() == {}

    def test_write_is_a_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert NullTracer().write(path) == 0
        assert not path.exists()


# ----------------------------------------------------------------------
# export: JSONL round-trip and validation
# ----------------------------------------------------------------------
class TestExport:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", kind=KIND_RUN, method="pbsm"):
            with tracer.span(PHASE_PARTITION):
                pass
        path = tmp_path / "t.jsonl"
        assert tracer.write(path) == 2
        spans = read_trace(path)
        assert [s["name"] for s in spans] == [PHASE_PARTITION, "run"]
        assert spans[1]["tags"] == {"method": "pbsm"}
        assert phase_totals(spans).keys() == {PHASE_PARTITION}

    def valid_record(self):
        return Span(1, None, "x", KIND_PHASE, 0.0, 1.0).to_dict()

    def test_validate_rejects_missing_field(self):
        record = self.valid_record()
        del record["kind"]
        with pytest.raises(TraceValidationError, match="missing field 'kind'"):
            validate_span_dict(record)

    def test_validate_rejects_unknown_kind(self):
        record = self.valid_record()
        record["kind"] = "interpretive_dance"
        with pytest.raises(TraceValidationError, match="unknown span kind"):
            validate_span_dict(record)

    def test_validate_rejects_wall_mismatch(self):
        record = self.valid_record()
        record["wall_seconds"] = 2.0
        with pytest.raises(TraceValidationError, match="disagrees"):
            validate_span_dict(record)

    def test_validate_rejects_wrong_schema_and_types(self):
        record = self.valid_record()
        record["schema"] = 99
        with pytest.raises(TraceValidationError, match="schema version"):
            validate_span_dict(record)
        record = self.valid_record()
        record["span_id"] = True  # bool is not an acceptable int here
        with pytest.raises(TraceValidationError, match="has type bool"):
            validate_span_dict(record)

    def test_read_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceValidationError, match="line 1"):
            read_trace(path)

    def test_summarize_and_worker_busy(self):
        tracer = Tracer()
        worker = tracer.add_span("worker", 0.5, kind=KIND_WORKER, worker="w0")
        tracer.add_span(
            "task", 0.3, kind=KIND_TASK, parent_id=worker.span_id, worker="w0"
        )
        spans = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
        assert worker_busy(spans) == {"w0": pytest.approx(0.5)}
        text = summarize_trace(spans)
        assert "2 spans" in text
        assert "worker w0" in text


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge_render(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Cache hits")
        registry.inc("hits_total", 2, cache="plan")
        registry.inc("hits_total", 3, cache="plan")
        registry.set("depth", 4.0)
        text = registry.render()
        assert '# TYPE hits_total counter' in text
        assert 'hits_total{cache="plan"} 5' in text
        assert "depth 4" in text
        assert registry.get("hits_total", cache="plan") == 5

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.set("x_total", 1.0)

    def test_observe_trace_handles_name_label(self):
        # Regression: a span *label* literally called "name" must not
        # collide with inc()'s metric-name parameter.
        tracer = Tracer()
        tracer.add_span(PHASE_JOIN, 0.5, kind=KIND_PHASE)
        spans = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
        registry = MetricsRegistry()
        registry.observe_trace(spans)
        text = registry.render()
        assert 'repro_trace_spans_total{kind="phase"} 1' in text
        assert f'kind="phase",name="{PHASE_JOIN}"' in text

    def test_observe_join(self, small_pair):
        left, right = small_pair
        result = PBSM(mb(0.5)).run(left, right)
        registry = MetricsRegistry()
        registry.observe_join(result.stats)
        assert registry.get(
            "repro_join_results_total", algorithm=result.stats.algorithm
        ) == result.stats.n_results


class TestHistogramQuantileEdgeCases:
    """quantile() must stay finite and sensible on every degenerate shape."""

    def test_unobserved_returns_zero(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        assert registry.quantile("lat", 0.5) == 0.0
        assert registry.quantile("missing", 0.5) == 0.0

    def test_q_zero_and_one_bracket_the_distribution(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            registry.observe("lat", value)
        q0 = registry.quantile("lat", 0.0)
        q1 = registry.quantile("lat", 1.0)
        assert 0.0 <= q0 <= q1 <= 4.0
        import math

        assert math.isfinite(q0) and math.isfinite(q1)

    def test_out_of_range_q_is_clamped(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        registry.observe("lat", 1.5)
        assert registry.quantile("lat", -0.5) == registry.quantile("lat", 0.0)
        assert registry.quantile("lat", 3.0) == registry.quantile("lat", 1.0)

    def test_all_mass_in_inf_bucket_clamps_to_last_finite_edge(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.1, 0.2))
        for _ in range(5):
            registry.observe("lat", 99.0)  # beyond every finite edge
        for q in (0.0, 0.5, 0.99, 1.0):
            assert registry.quantile("lat", q) == 0.2

    def test_explicit_inf_edge_never_leaks(self):
        import math

        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.5, math.inf))
        registry.observe("lat", 0.1)
        registry.observe("lat", 100.0)
        for q in (0.0, 0.5, 1.0):
            assert math.isfinite(registry.quantile("lat", q))
        assert registry.quantile("lat", 1.0) == 0.5

    def test_no_finite_edges_falls_back_to_mean(self):
        import math

        registry = MetricsRegistry()
        registry.histogram("lat", buckets=())
        registry.observe("lat", 2.0)
        registry.observe("lat", 4.0)
        assert registry.quantile("lat", 0.5) == 3.0
        inf_only = MetricsRegistry()
        inf_only.histogram("lat", buckets=(math.inf,))
        inf_only.observe("lat", math.inf)
        assert inf_only.quantile("lat", 0.5) == 0.0


# ----------------------------------------------------------------------
# driver reconciliation: the trace IS the stats
# ----------------------------------------------------------------------
DRIVERS = [
    pytest.param(lambda tr: PBSM(mb(0.5), tracer=tr), id="pbsm"),
    pytest.param(lambda tr: PBSM(mb(0.5), dedup="sort", tracer=tr), id="pbsm-sort"),
    pytest.param(lambda tr: S3J(mb(0.5), tracer=tr), id="s3j"),
    pytest.param(lambda tr: SSSJ(mb(0.5), tracer=tr), id="sssj"),
    pytest.param(lambda tr: SpatialHashJoin(mb(0.5), tracer=tr), id="shj"),
]


class TestDriverReconciliation:
    @pytest.mark.parametrize("make", DRIVERS)
    def test_phase_walls_equal_trace(self, make, small_pair):
        left, right = small_pair
        tracer = Tracer()
        result = make(tracer).run(left, right)
        stats_phases = result.stats.wall_seconds_by_phase
        assert stats_phases  # drivers always record their phases
        # Exact equality: both numbers are the same span measurement.
        assert stats_phases == tracer.wall_by_phase()
        assert set(stats_phases) <= set(ALL_PHASES)
        assert len(tracer.spans_of_kind(KIND_RUN)) == 1

    @pytest.mark.parametrize("make", DRIVERS)
    def test_stats_identical_with_tracing_off(self, make, small_pair):
        left, right = small_pair
        traced = make(Tracer()).run(left, right)
        untraced = make(None).run(left, right)
        assert untraced.pairs == traced.pairs
        # The phases exist (and cover the same keys) either way.
        assert set(untraced.stats.wall_seconds_by_phase) == set(
            traced.stats.wall_seconds_by_phase
        )

    def test_phase_spans_carry_counters(self, small_pair):
        left, right = small_pair
        tracer = Tracer()
        PBSM(mb(0.5), tracer=tracer).run(left, right)
        join_span = [
            s for s in tracer.spans_of_kind(KIND_PHASE) if s.name == PHASE_JOIN
        ][0]
        assert join_span.counters.get("io_units", 0) > 0


# ----------------------------------------------------------------------
# parallel execution: per-task wall crosses the process boundary
# ----------------------------------------------------------------------
class TestParallelTiming:
    def test_in_process_busy_and_makespan(self, small_pair):
        left, right = small_pair
        tracer = Tracer()
        join = ParallelPBSM(mb(0.25), 2, executor="simulated", tracer=tracer)
        result = join.run(left, right)
        stats = result.stats
        assert stats.join_busy_seconds > 0
        assert stats.join_makespan_seconds > 0
        # One process: busy cannot exceed the observed elapsed time.
        assert stats.join_busy_seconds <= stats.join_makespan_seconds * 1.5
        task_spans = tracer.spans_of_kind(KIND_TASK)
        assert task_spans
        assert sum(s.wall_seconds for s in task_spans) == pytest.approx(
            stats.join_busy_seconds
        )

    def test_process_mode_emits_worker_spans(self):
        workers = 2
        left = random_kpes(600, seed=31, max_edge=0.05)
        right = random_kpes(600, seed=32, start_oid=10_000, max_edge=0.05)
        tracer = Tracer()
        join = ParallelPBSM(mb(0.25), workers, executor="process", tracer=tracer)
        result = join.run(left, right)
        stats = result.stats

        worker_spans = tracer.spans_of_kind(KIND_WORKER)
        task_spans = tracer.spans_of_kind(KIND_TASK)
        assert len(worker_spans) >= workers
        assert task_spans
        # A chunk's wall includes its tasks' walls, so summed worker time
        # dominates summed task time.
        worker_wall = sum(s.wall_seconds for s in worker_spans)
        task_wall = sum(s.wall_seconds for s in task_spans)
        assert worker_wall >= task_wall
        # Task spans hang off worker spans.
        worker_ids = {s.span_id for s in worker_spans}
        assert all(s.parent_id in worker_ids for s in task_spans)

        # Worker-measured busy time survived the pool boundary.
        assert stats.join_busy_seconds == pytest.approx(task_wall)
        assert stats.join_makespan_seconds > 0
        assert stats.worker_busy_seconds
        assert sum(stats.worker_busy_seconds.values()) == pytest.approx(
            worker_wall
        )
        # And the results still match the sequential execution.
        sequential = ParallelPBSM(mb(0.25), 1, executor="simulated").run(
            left, right
        )
        assert set(result.pairs) == set(sequential.pairs)

    def test_process_mode_untraced_still_accounts_time(self):
        left = random_kpes(300, seed=33, max_edge=0.05)
        right = random_kpes(300, seed=34, start_oid=10_000, max_edge=0.05)
        join = ParallelPBSM(mb(0.25), 2, executor="process")
        stats = join.run(left, right).stats
        assert stats.join_busy_seconds > 0
        assert stats.join_makespan_seconds > 0
        assert stats.worker_busy_seconds
        text = format_stats(stats, verbose=True)
        assert "join busy/makespan" in text


# ----------------------------------------------------------------------
# spatial_join + planner integration
# ----------------------------------------------------------------------
class TestSpatialJoinTracing:
    def test_sequential_trace_reconciles(self, small_pair):
        left, right = small_pair
        tracer = Tracer()
        result = spatial_join(left, right, mb(0.5), tracer=tracer)
        stats = result.stats
        assert stats.total_wall_seconds > 0
        assert stats.wall_seconds_by_phase == tracer.wall_by_phase()
        sections = tracer.spans_of_kind(KIND_SECTION)
        assert any(s.name == "spatial_join" for s in sections)
        # The section covers everything the stats report.
        outer = [s for s in sections if s.name == "spatial_join"][0]
        assert outer.wall_seconds == pytest.approx(stats.total_wall_seconds)
        assert outer.wall_seconds >= sum(stats.wall_seconds_by_phase.values())

    def test_auto_records_plan_span_and_drift(self, small_pair):
        left, right = small_pair
        tracer = Tracer()
        from repro.planner.cache import PlannerCache

        result = spatial_join(
            left, right, mb(0.5), method="auto", cache=PlannerCache(),
            tracer=tracer,
        )
        plan_spans = tracer.spans_of_kind(KIND_PLAN)
        assert len(plan_spans) == 1
        assert plan_spans[0].tags["from_cache"] is False
        assert result.stats.planning_seconds == pytest.approx(
            plan_spans[0].wall_seconds
        )
        section_names = {s.name for s in tracer.spans_of_kind(KIND_SECTION)}
        assert {"profile", "enumerate"} <= section_names
        explain = result.plan.explain()
        assert "phase shares, estimated vs. measured wall:" in explain
        assert "drift" in explain

    def test_cache_hit_plans_without_reprofiling(self, small_pair):
        left, right = small_pair
        from repro.planner.cache import PlannerCache

        cache = PlannerCache()
        spatial_join(left, right, mb(0.5), method="auto", cache=cache)
        tracer = Tracer()
        result = spatial_join(
            left, right, mb(0.5), method="auto", cache=cache, tracer=tracer
        )
        plan_span = tracer.spans_of_kind(KIND_PLAN)[0]
        assert plan_span.tags["from_cache"] is True
        assert not any(
            s.name == "profile" for s in tracer.spans_of_kind(KIND_SECTION)
        )
        assert result.plan.from_cache is True

    def test_stats_to_dict_carries_timing_fields(self, small_pair):
        left, right = small_pair
        stats = spatial_join(left, right, mb(0.5)).stats
        record = stats_to_dict(stats)
        assert record["total_wall_seconds"] > 0
        assert "planning_seconds" in record
        assert "join_busy_seconds" in record
        assert record["wall_seconds_by_phase"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    @pytest.fixture
    def relations(self, tmp_path):
        from repro.datasets.fileio import save_relation

        left = random_kpes(400, seed=41, max_edge=0.05)
        right = random_kpes(400, seed=42, start_oid=10_000, max_edge=0.05)
        lp, rp = tmp_path / "l.csv", tmp_path / "r.csv"
        save_relation(left, lp)
        save_relation(right, rp)
        return str(lp), str(rp)

    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_join_trace_report_roundtrip(self, relations, tmp_path, capsys):
        lp, rp = relations
        trace_path = tmp_path / "t.jsonl"
        report_path = tmp_path / "report.json"
        assert self.run_cli(
            "join", lp, rp, "--trace", str(trace_path),
            "--report", str(report_path),
        ) == 0
        out = capsys.readouterr().out
        assert "total wall seconds" in out
        assert "wrote stats report" in out

        spans = read_trace(trace_path)  # validates every line
        report = json.loads(report_path.read_text())
        # The trace's phase totals are the report's, to the digit.
        assert phase_totals(spans) == report["wall_seconds_by_phase"]
        assert report["total_wall_seconds"] > 0

        assert self.run_cli("trace", str(trace_path), "--validate-only") == 0
        assert "schema valid" in capsys.readouterr().out
        assert self.run_cli("trace", str(trace_path), "--metrics") == 0
        out = capsys.readouterr().out
        assert "per-phase wall seconds:" in out
        assert "repro_trace_wall_seconds_total" in out

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 1}\n')
        assert self.run_cli("trace", str(bad)) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_workers_trace_has_worker_spans(self, relations, tmp_path, capsys):
        lp, rp = relations
        trace_path = tmp_path / "tw.jsonl"
        assert self.run_cli(
            "join", lp, rp, "--workers", "2", "--memory-mb", "0.25",
            "--trace", str(trace_path), "--verbose",
        ) == 0
        out = capsys.readouterr().out
        assert "join busy/makespan" in out
        spans = read_trace(trace_path)
        assert len(worker_busy(spans)) >= 2
