"""Unit tests for the I/O + CPU cost model."""

import pytest

from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel, mb


class TestPageArithmetic:
    def test_records_per_page(self):
        cost = CostModel(page_size=8192, kpe_bytes=20)
        assert cost.records_per_page(20) == 409

    def test_records_per_page_at_least_one(self):
        cost = CostModel(page_size=16)
        assert cost.records_per_page(1000) == 1

    def test_pages_for_zero(self):
        assert CostModel().pages_for(0, 20) == 0

    def test_pages_for_exact_fit(self):
        cost = CostModel(page_size=100)
        assert cost.pages_for(10, 10) == 1
        assert cost.pages_for(11, 10) == 2

    def test_pages_for_rounds_up(self):
        cost = CostModel(page_size=8192)
        assert cost.pages_for(410, 20) == 2

    def test_bytes_for(self):
        assert CostModel().bytes_for(100, 20) == 2000


class TestRequestCost:
    def test_request_units_is_pt_plus_n(self):
        cost = CostModel(pt_ratio=5.0)
        assert cost.request_units(1) == 6.0
        assert cost.request_units(10) == 15.0

    def test_request_units_zero_pages_free(self):
        assert CostModel().request_units(0) == 0.0

    def test_sequential_beats_random(self):
        """The model's essence: n pages in 1 request < n requests of 1."""
        cost = CostModel(pt_ratio=5.0)
        assert cost.request_units(100) < 100 * cost.request_units(1)

    def test_io_seconds_scaling(self):
        cost = CostModel(page_transfer_seconds=0.002)
        assert cost.io_seconds(100) == pytest.approx(0.2)


class TestCpuCost:
    def test_counts_translate_linearly(self):
        cost = CostModel()
        c = CpuCounters(intersection_tests=1000)
        assert cost.cpu_seconds(c) == pytest.approx(1000 * cost.test_op_seconds)

    def test_hilbert_codes_cost_more_than_z(self):
        """Section 4.4.2: the Peano curve is used because its codes are
        cheaper to compute."""
        cost = CostModel()
        c = CpuCounters(code_computations=1000)
        assert cost.cpu_seconds(c, hilbert=True) > cost.cpu_seconds(c, hilbert=False)

    def test_all_op_classes_charged(self):
        cost = CostModel()
        c = CpuCounters(
            intersection_tests=1,
            comparisons=1,
            heap_ops=1,
            structure_ops=1,
            refpoint_tests=1,
            code_computations=1,
        )
        expected = (
            cost.test_op_seconds
            + cost.comparison_op_seconds
            + cost.heap_op_seconds
            + cost.structure_op_seconds
            + cost.refpoint_op_seconds
            + cost.zcode_op_seconds
        )
        assert cost.cpu_seconds(c) == pytest.approx(expected)


class TestHelpers:
    def test_mb(self):
        assert mb(1) == 1024 * 1024
        assert mb(2.5) == int(2.5 * 1024 * 1024)

    def test_model_is_frozen(self):
        cost = CostModel()
        with pytest.raises(AttributeError):
            cost.pt_ratio = 9.0
