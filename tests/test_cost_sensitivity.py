"""Cost-model sensitivity: the reproduced orderings must not hinge on the
particular constants chosen in ``repro.io.costmodel``.

EXPERIMENTS.md claims every reproduced ordering is driven by operation
*counts*, not by the translation constants.  These tests re-run the key
comparisons under substantially perturbed cost models (cheap seeks /
expensive seeks / expensive CPU) and assert the paper's orderings hold in
each regime.
"""

import pytest

from repro.core.phases import PHASE_JOIN
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.pbsm import PBSM
from repro.s3j import S3J

from tests.conftest import random_kpes

#: Three deliberately different hardware personalities.
COST_MODELS = {
    "cheap_seeks": CostModel(pt_ratio=1.0),
    "expensive_seeks": CostModel(pt_ratio=25.0),
    "slow_cpu": CostModel(
        test_op_seconds=10e-6,
        comparison_op_seconds=5e-6,
        structure_op_seconds=8e-6,
    ),
}


def _workload(n=900):
    return (
        random_kpes(n, 91, max_edge=0.02),
        random_kpes(n, 92, start_oid=50_000, max_edge=0.02),
    )


@pytest.mark.parametrize("name", sorted(COST_MODELS))
class TestOrderingsAcrossCostModels:
    def test_rpm_beats_sort_dedup(self, name):
        """Figure 3's ordering: PBSM+RPM <= PBSM+PD in total runtime."""
        cost = COST_MODELS[name]
        left, right = _workload()
        memory = 1200 * 20
        rpm = PBSM(memory, dedup="rpm", cost_model=cost).run(left, right)
        sort = PBSM(memory, dedup="sort", cost_model=cost).run(left, right)
        assert rpm.stats.sim_seconds <= sort.stats.sim_seconds

    def test_s3j_replication_beats_original(self, name):
        """Figure 11's ordering, at any hardware personality."""
        cost = COST_MODELS[name]
        left, right = _workload()
        memory = 1200 * 20
        repl = S3J(memory, replicate=True, cost_model=cost).run(left, right)
        orig = S3J(memory, replicate=False, cost_model=cost).run(left, right)
        assert repl.stats.sim_seconds < orig.stats.sim_seconds

    def test_trie_beats_list_on_large_inmemory_join(self, name):
        """Figure 4's ordering is pure CPU counts: it must hold under any
        constant scaling that keeps tests >= comparisons in cost."""
        cost = COST_MODELS[name]
        left, right = _workload(1200)
        seconds = {}
        for algo in ("sweep_list", "sweep_trie"):
            counters = CpuCounters()
            internal_algorithm(algo)(left, right, lambda r, s: None, counters)
            seconds[algo] = cost.cpu_seconds(counters)
        assert seconds["sweep_trie"] < seconds["sweep_list"]


class TestCountsAreModelIndependent:
    def test_identical_counts_under_all_models(self):
        """The counted quantities themselves never depend on the model."""
        left, right = _workload(400)
        reference = None
        for cost in COST_MODELS.values():
            res = PBSM(800 * 20, cost_model=cost).run(left, right)
            key = (
                res.stats.n_results,
                res.stats.records_partitioned,
                res.stats.duplicates_suppressed,
                tuple(sorted(res.stats.cpu_by_phase[PHASE_JOIN].items())),
            )
            if reference is None:
                reference = key
            assert key == reference

    def test_io_units_scale_with_pt(self):
        """More expensive positioning raises unit totals, never counts."""
        left, right = _workload(400)
        cheap = PBSM(800 * 20, cost_model=CostModel(pt_ratio=1.0)).run(left, right)
        dear = PBSM(800 * 20, cost_model=CostModel(pt_ratio=25.0)).run(left, right)
        assert dear.stats.io_units > cheap.stats.io_units
        assert dear.stats.io_pages_by_phase == cheap.stats.io_pages_by_phase
