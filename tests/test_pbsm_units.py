"""Unit tests for PBSM's estimator, partitioner, repartitioning and dedup."""

import pytest

from repro.core.rect import KPE, SIZEOF_KPE
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile
from repro.pbsm.dedup import sort_based_dedup
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation
from repro.pbsm.repartition import choose_split, compose_region_test, split_partition

from tests.conftest import random_kpes

UNIT = Space(0.0, 0.0, 1.0, 1.0)


class TestEstimator:
    def test_formula_one(self):
        # (1000 + 1000) * 20 bytes = 40_000; M = 10_000 -> P = 4 (t=1)
        assert estimate_partitions(1000, 1000, 20, 10_000, t_factor=1.0) == 4

    def test_ceiling(self):
        assert estimate_partitions(1001, 1000, 20, 10_000, t_factor=1.0) == 5

    def test_t_factor_bumps_borderline(self):
        """The paper's 1.99 example: without t the formula gives P=2 and
        both partitions are unlikely to fit; with t > 1 we get 3."""
        n = 995  # (n + n) * 20 / 20_000 = 1.99
        assert estimate_partitions(n, n, 20, 20_000, t_factor=1.0) == 2
        assert estimate_partitions(n, n, 20, 20_000, t_factor=1.2) == 3

    def test_at_least_one_partition(self):
        assert estimate_partitions(1, 1, 20, 10**9) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_partitions(1, 1, 20, 0)
        with pytest.raises(ValueError):
            estimate_partitions(1, 1, 20, 100, t_factor=0)


class TestPartitioner:
    def _partition(self, kpes, n_partitions=4, side=4):
        disk = SimulatedDisk(CostModel(page_size=200))
        grid = TileGrid(UNIT, side, side, n_partitions)
        counters = CpuCounters()
        files, written = partition_relation(
            kpes, grid, disk, SIZEOF_KPE, counters, "T"
        )
        return files, written, grid, disk, counters

    def test_every_record_lands_somewhere(self):
        kpes = random_kpes(100, 1, max_edge=0.05)
        files, written, grid, _, _ = self._partition(kpes)
        assert sum(f.n_records for f in files) == written
        assert written >= len(kpes)
        stored = {k[0] for f in files for k in f.records}
        assert stored == {k.oid for k in kpes}

    def test_replication_for_straddling_rects(self):
        # one rect covering everything must appear in all partitions
        kpes = [KPE(1, 0.0, 0.0, 1.0, 1.0)]
        files, written, _, _, _ = self._partition(kpes, n_partitions=4)
        assert written == 4
        assert all(f.n_records == 1 for f in files)

    def test_writes_charged(self):
        kpes = random_kpes(200, 2)
        _, _, _, disk, _ = self._partition(kpes)
        assert disk.total_counters().pages_written > 0
        assert disk.total_counters().pages_read == 0  # input reads are free

    def test_structure_ops_counted(self):
        kpes = random_kpes(50, 3)
        _, _, _, _, counters = self._partition(kpes)
        assert counters.structure_ops >= len(kpes)

    def test_record_in_exactly_overlapping_partitions(self):
        kpes = [KPE(7, 0.1, 0.1, 0.15, 0.15)]
        files, _, grid, _, _ = self._partition(kpes)
        expected = grid.partitions_for_rect(kpes[0])
        holders = {pid for pid, f in enumerate(files) if f.n_records}
        assert holders == expected


class TestChooseSplit:
    def test_at_least_two(self):
        assert choose_split(100, 0, 1000, 1.0) == 2

    def test_scales_with_size(self):
        small = choose_split(5_000, 500, 1_000, 1.0)
        large = choose_split(50_000, 500, 1_000, 1.0)
        assert large > small

    def test_capped(self):
        assert choose_split(10**9, 0, 100, 1.0) <= 64

    def test_smaller_side_exhausting_memory_still_splits(self):
        k = choose_split(10_000, 999_999, 1_000_000, 1.0)
        assert k >= 2


class TestSplitPartition:
    def test_split_preserves_records_with_replication(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        source = PageFile(disk, SIZEOF_KPE, "src")
        kpes = random_kpes(80, 9, max_edge=0.1)
        source.records.extend(kpes)
        counters = CpuCounters()
        files, subgrid = split_partition(
            source, 4, UNIT, disk, counters, 4, "hash", "sub"
        )
        stored = {k[0] for f in files for k in f.records}
        assert stored == {k.oid for k in kpes}
        assert sum(f.n_records for f in files) >= len(kpes)
        # source must remain intact (it may be joined against again)
        assert source.n_records == len(kpes)

    def test_split_charges_read_and_writes(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        source = PageFile(disk, SIZEOF_KPE, "src")
        source.records.extend(random_kpes(50, 10))
        disk.reset()
        split_partition(source, 2, UNIT, disk, CpuCounters(), 4, "hash", "sub")
        total = disk.total_counters()
        assert total.pages_read > 0
        assert total.pages_written > 0


class TestComposeRegionTest:
    def test_conjunction(self):
        grid = TileGrid(UNIT, 4, 4, 4)
        parent_hits = []

        def parent(x, y):
            parent_hits.append((x, y))
            return x < 0.5

        pid = grid.partition_of_point(0.2, 0.2)
        owns = compose_region_test(parent, grid, pid)
        assert owns(0.2, 0.2)
        assert not owns(0.9, 0.2)  # fails parent
        other_pid = (pid + 1) % 4
        owns_other = compose_region_test(parent, grid, other_pid)
        assert not owns_other(0.2, 0.2)  # fails subgrid


class TestSortBasedDedup:
    def test_removes_cross_partition_duplicates(self):
        disk = SimulatedDisk(CostModel(page_size=100))
        f = PageFile(disk, 8, "cands")
        f.records.extend([(1, 2), (3, 4), (1, 2), (1, 2), (5, 6)])
        unique, removed = sort_based_dedup(f, 10_000, CpuCounters())
        assert sorted(unique) == [(1, 2), (3, 4), (5, 6)]
        assert removed == 2

    def test_empty(self):
        disk = SimulatedDisk()
        f = PageFile(disk, 8, "cands")
        unique, removed = sort_based_dedup(f, 1000, CpuCounters())
        assert unique == [] and removed == 0

    def test_charges_sort_io(self):
        disk = SimulatedDisk(CostModel(page_size=100))
        f = PageFile(disk, 8, "cands")
        f.records.extend((i, i) for i in range(500))
        disk.reset()
        sort_based_dedup(f, 300, CpuCounters())
        assert disk.total_units() > 0
