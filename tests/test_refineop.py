"""Tests for the pipelined refinement operator."""

import random

from repro.io.disk import SimulatedDisk
from repro.operators import LimitOp, ScanOp, SpatialJoinOp
from repro.operators.refineop import RefineOp
from repro.pbsm import PBSM
from repro.refine import GeometryStore, refine, regular_polygon



def build_world(n=120, seed=7):
    """Relations of polygon MBRs plus their geometry stores."""
    rng = random.Random(seed)
    disk = SimulatedDisk()
    store_left = GeometryStore(disk)
    store_right = GeometryStore(disk)
    left_kpes = []
    right_kpes = []
    from repro.core.rect import KPE

    for i in range(n):
        poly = regular_polygon(rng.random(), rng.random(), 0.04 + rng.random() * 0.04)
        store_left.add(i, poly)
        left_kpes.append(KPE(i, *poly.mbr()))
    for i in range(n):
        poly = regular_polygon(rng.random(), rng.random(), 0.04 + rng.random() * 0.04)
        store_right.add(10_000 + i, poly)
        right_kpes.append(KPE(10_000 + i, *poly.mbr()))
    return left_kpes, right_kpes, store_left, store_right


class TestRefineOp:
    def test_matches_batch_refine(self):
        left, right, store_left, store_right = build_world()
        join = PBSM(2048)
        candidates = join.run(left, right).pairs
        batch = refine(candidates, store_left, store_right, use_kernels=True)

        store_left.reset_buffer()
        store_right.reset_buffer()
        op = RefineOp(
            SpatialJoinOp(PBSM(2048), left, right), store_left, store_right
        )
        streamed = list(op)
        assert sorted(streamed) == sorted(batch.pairs)
        assert op.stats.confirmed == len(streamed)
        assert op.stats.candidates == len(candidates)

    def test_kernels_reduce_exact_tests(self):
        left, right, store_left, store_right = build_world()
        with_k = RefineOp(
            SpatialJoinOp(PBSM(2048), left, right), store_left, store_right, True
        )
        list(with_k)
        without_k = RefineOp(
            SpatialJoinOp(PBSM(2048), left, right), store_left, store_right, False
        )
        list(without_k)
        assert with_k.stats.kernel_hits > 0
        assert with_k.stats.exact_tests < without_k.stats.exact_tests

    def test_limit_over_refinement_stops_early(self):
        """The full multi-step pipeline is stoppable: LIMIT over
        refinement over a pipelined join touches only a prefix."""
        left, right, store_left, store_right = build_world(n=200)
        op = RefineOp(
            SpatialJoinOp(PBSM(2048), left, right), store_left, store_right
        )
        limited = list(LimitOp(op, 5))
        assert len(limited) == 5
        # Far fewer candidates examined than the whole join produces.
        full = PBSM(2048).run(left, right)
        assert op.stats.candidates < len(full)

    def test_over_plain_scan(self):
        """RefineOp composes with any child producing oid pairs."""
        left, right, store_left, store_right = build_world(n=40)
        pairs = [(a.oid, b.oid) for a in left[:10] for b in right[:10]]
        op = RefineOp(ScanOp(pairs), store_left, store_right)
        confirmed = list(op)
        assert all(p in pairs for p in confirmed)
        assert op.stats.candidates == 100

    def test_reopen_resets_stats(self):
        left, right, store_left, store_right = build_world(n=30)
        op = RefineOp(
            SpatialJoinOp(PBSM(2048), left, right), store_left, store_right
        )
        first = len(list(op))
        second = len(list(op))
        assert first == second
        assert op.stats.confirmed == second
