"""Unit and property tests for PBSM's tile grid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import KPE
from repro.core.space import Space
from repro.pbsm.grid import TileGrid

UNIT = Space(0.0, 0.0, 1.0, 1.0)


class TestConstruction:
    def test_rejects_fewer_tiles_than_partitions(self):
        with pytest.raises(ValueError):
            TileGrid(UNIT, 2, 2, 5)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            TileGrid(UNIT, 0, 1, 1)

    def test_rejects_unknown_mapping(self):
        with pytest.raises(ValueError):
            TileGrid(UNIT, 4, 4, 4, mapping="random")

    def test_for_partitions_guarantees_nt_ge_p(self):
        for p in (1, 2, 3, 7, 100):
            grid = TileGrid.for_partitions(UNIT, p, tiles_per_partition=4)
            assert grid.tile_count() >= p
            assert grid.n_partitions == p


class TestTileArithmetic:
    def test_tile_of_point_quadrants(self):
        grid = TileGrid(UNIT, 2, 2, 4)
        assert grid.tile_of_point(0.25, 0.25) == (0, 0)
        assert grid.tile_of_point(0.75, 0.25) == (1, 0)
        assert grid.tile_of_point(0.25, 0.75) == (0, 1)
        assert grid.tile_of_point(0.75, 0.75) == (1, 1)

    def test_far_border_clamped(self):
        grid = TileGrid(UNIT, 4, 4, 4)
        assert grid.tile_of_point(1.0, 1.0) == (3, 3)

    def test_out_of_space_clamped(self):
        grid = TileGrid(UNIT, 4, 4, 4)
        assert grid.tile_of_point(-1.0, 2.0) == (0, 3)

    def test_tiles_for_rect_single_tile(self):
        grid = TileGrid(UNIT, 4, 4, 4)
        k = KPE(1, 0.05, 0.05, 0.2, 0.2)
        assert list(grid.tiles_for_rect(k)) == [(0, 0)]

    def test_tiles_for_rect_block(self):
        grid = TileGrid(UNIT, 4, 4, 4)
        k = KPE(1, 0.3, 0.3, 0.55, 0.45)
        assert sorted(grid.tiles_for_rect(k)) == [(1, 1), (2, 1)]

    def test_whole_space_rect_covers_all_tiles(self):
        grid = TileGrid(UNIT, 3, 3, 2)
        k = KPE(1, 0.0, 0.0, 1.0, 1.0)
        assert len(list(grid.tiles_for_rect(k))) == 9


class TestPartitionMapping:
    @pytest.mark.parametrize("mapping", ["hash", "round_robin"])
    def test_partition_ids_in_range(self, mapping):
        grid = TileGrid(UNIT, 8, 8, 5, mapping=mapping)
        for tx in range(8):
            for ty in range(8):
                assert 0 <= grid.partition_of_tile(tx, ty) < 5

    @pytest.mark.parametrize("mapping", ["hash", "round_robin"])
    def test_every_partition_gets_tiles(self, mapping):
        grid = TileGrid(UNIT, 8, 8, 5, mapping=mapping)
        owners = {
            grid.partition_of_tile(tx, ty) for tx in range(8) for ty in range(8)
        }
        assert owners == set(range(5))

    def test_partitions_for_rect_deduplicates(self):
        grid = TileGrid(UNIT, 8, 8, 2)
        k = KPE(1, 0.0, 0.0, 1.0, 1.0)  # overlaps all 64 tiles
        assert grid.partitions_for_rect(k) == {0, 1}

    def test_point_partition_consistent_with_tile(self):
        grid = TileGrid(UNIT, 8, 8, 3)
        tx, ty = grid.tile_of_point(0.7, 0.3)
        assert grid.partition_of_point(0.7, 0.3) == grid.partition_of_tile(tx, ty)


coord = st.floats(0, 1, allow_nan=False)


class TestGridProperties:
    @given(coord, coord, st.integers(1, 6), st.integers(1, 20))
    def test_point_has_unique_partition(self, x, y, side, p):
        if side * side < p:
            return
        grid = TileGrid(UNIT, side, side, p)
        pid = grid.partition_of_point(x, y)
        assert 0 <= pid < p
        assert grid.partition_of_point(x, y) == pid  # deterministic

    @given(coord, coord, coord, coord, st.integers(2, 8))
    def test_rect_partitions_cover_contained_points(self, x1, y1, x2, y2, side):
        """Every point of a rectangle maps to one of the partitions the
        rectangle was inserted into — the completeness half of RPM."""
        grid = TileGrid(UNIT, side, side, max(1, side))
        k = KPE(1, min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        pids = grid.partitions_for_rect(k)
        for tx in (k.xl, (k.xl + k.xh) / 2, k.xh):
            for ty in (k.yl, (k.yl + k.yh) / 2, k.yh):
                assert grid.partition_of_point(tx, ty) in pids
