"""Tests for grid histograms and selectivity estimation."""

import pytest

from repro.core.space import Space
from repro.datasets import clustered_rects, uniform_rects
from repro.estimate import (
    GridHistogram,
    choose_join_order,
    estimate_partitions_for_intermediate,
)
from repro.internal import brute_force_pairs
from repro.pbsm.estimator import estimate_partitions

UNIT = Space(0.0, 0.0, 1.0, 1.0)


class TestHistogramConstruction:
    def test_counts_sum_to_n(self):
        kpes = uniform_rects(500, 1)
        hist = GridHistogram.build(kpes, UNIT, resolution=16)
        assert hist.n == 500
        assert sum(hist.counts) == 500

    def test_empty_relation(self):
        hist = GridHistogram.build([], UNIT)
        assert hist.n == 0
        assert hist.total_mean_edges() == (0.0, 0.0)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            GridHistogram(UNIT, resolution=0)

    def test_mean_edges_match_data(self):
        kpes = uniform_rects(400, 2, mean_edge=0.02)
        hist = GridHistogram.build(kpes, UNIT, resolution=8)
        w, h = hist.total_mean_edges()
        true_w = sum(k.xh - k.xl for k in kpes) / len(kpes)
        assert w == pytest.approx(true_w, rel=1e-9)

    def test_skew_shows_in_cells(self):
        kpes = clustered_rects(1000, 3, clusters=2, cluster_sigma=0.01)
        hist = GridHistogram.build(kpes, UNIT, resolution=16)
        occupied = sum(1 for c in hist.counts if c > 0)
        assert occupied < 40  # most cells empty under heavy skew


class TestJoinEstimation:
    def test_uniform_estimate_within_factor_three(self):
        left = uniform_rects(800, 4, mean_edge=0.02)
        right = uniform_rects(800, 5, mean_edge=0.02, start_oid=10_000)
        hist_left = GridHistogram.build(left, UNIT, 8)
        hist_right = GridHistogram.build(right, UNIT, 8)
        estimate = hist_left.estimate_join_results(hist_right)
        truth = len(brute_force_pairs(left, right))
        assert truth > 0
        assert truth / 3 <= estimate <= truth * 3

    def test_estimate_grows_with_rect_size(self):
        small = uniform_rects(300, 6, mean_edge=0.01)
        large = uniform_rects(300, 6, mean_edge=0.05)
        probe = uniform_rects(300, 7, mean_edge=0.01, start_oid=10_000)
        hist_probe = GridHistogram.build(probe, UNIT, 8)
        est_small = GridHistogram.build(small, UNIT, 8).estimate_join_results(hist_probe)
        est_large = GridHistogram.build(large, UNIT, 8).estimate_join_results(hist_probe)
        assert est_large > est_small

    def test_mismatched_histograms_rejected(self):
        a = GridHistogram(UNIT, 8)
        b = GridHistogram(UNIT, 16)
        with pytest.raises(ValueError):
            a.estimate_join_results(b)

    def test_join_output_stats(self):
        left = uniform_rects(400, 8, mean_edge=0.03)
        right = uniform_rects(400, 9, mean_edge=0.01, start_oid=10_000)
        hist_left = GridHistogram.build(left, UNIT, 8)
        hist_right = GridHistogram.build(right, UNIT, 8)
        cardinality, w, h = hist_left.estimate_join_output(hist_right)
        assert cardinality > 0
        # output MBRs cannot exceed the smaller input's mean edges
        assert w <= hist_left.total_mean_edges()[0]
        assert w == pytest.approx(
            min(hist_left.total_mean_edges()[0], hist_right.total_mean_edges()[0])
        )


class TestIntermediateFormulaOne:
    def test_matches_formula_on_estimated_cardinality(self):
        left = uniform_rects(600, 10, mean_edge=0.03)
        right = uniform_rects(600, 11, mean_edge=0.03, start_oid=10_000)
        hist_left = GridHistogram.build(left, UNIT, 8)
        hist_right = GridHistogram.build(right, UNIT, 8)
        estimated = int(-(-hist_left.estimate_join_results(hist_right) // 1))
        expected = estimate_partitions(estimated, 1000, 20, 65536, 1.2)
        got = estimate_partitions_for_intermediate(
            hist_left, hist_right, 1000, 20, 65536, 1.2
        )
        assert got == expected


class TestJoinOrder:
    def test_prefers_small_results_first(self):
        # two dense overlapping relations and one nearly disjoint one
        dense_a = uniform_rects(400, 12, mean_edge=0.05)
        dense_b = uniform_rects(400, 13, mean_edge=0.05, start_oid=10_000)
        sparse = uniform_rects(50, 14, mean_edge=0.001, start_oid=20_000)
        hists = [
            GridHistogram.build(rel, UNIT, 8) for rel in (dense_a, dense_b, sparse)
        ]
        order = choose_join_order(hists)
        assert len(order) == 3
        assert sorted(order) == [0, 1, 2]
        # the sparse relation participates in the cheapest first pair
        assert 2 in order[:2]

    def test_short_inputs(self):
        assert choose_join_order([]) == []
        assert choose_join_order([GridHistogram(UNIT, 4)]) == [0]
