"""Tests for relation file I/O, the pattern generators, and the codecs."""

import math

import pytest

from repro.core.rect import KPE, valid_kpe
from repro.datasets.fileio import (
    load_relation,
    read_csv,
    read_npy,
    save_relation,
    write_csv,
    write_npy,
)
from repro.datasets.patterns import manhattan_grid, mixed_scale, radial_city
from repro.io.codec import KpeCodec, LevelEntryCodec, PackedPageFile, PairCodec
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk

from tests.conftest import random_kpes


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        kpes = random_kpes(50, 1)
        path = tmp_path / "rel.csv"
        write_csv(kpes, path)
        loaded = read_csv(path)
        assert loaded == kpes

    def test_headerless(self, tmp_path):
        kpes = random_kpes(10, 2)
        path = tmp_path / "rel.csv"
        write_csv(kpes, path, header=False)
        assert read_csv(path) == kpes

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError, match="expected 5 fields"):
            read_csv(path)

    def test_inverted_mbr_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,0.9,0.1,0.2,0.5\n")
        with pytest.raises(ValueError, match="invalid MBR"):
            read_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,a,b,c,d\n")
        with pytest.raises(ValueError):
            read_csv(path)


class TestNpyRoundTrip:
    def test_round_trip(self, tmp_path):
        kpes = random_kpes(50, 3)
        path = tmp_path / "rel.npy"
        write_npy(kpes, path)
        assert read_npy(path) == kpes

    def test_wrong_shape_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((4, 3)))
        with pytest.raises(ValueError, match="expected an"):
            read_npy(path)


class TestDispatch:
    def test_by_extension(self, tmp_path):
        kpes = random_kpes(20, 4)
        for name in ("rel.csv", "rel.npy"):
            path = tmp_path / name
            save_relation(kpes, path)
            assert load_relation(path) == kpes

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_relation([], tmp_path / "rel.wkt")
        with pytest.raises(ValueError, match="unsupported"):
            load_relation(tmp_path / "rel.wkt")


@pytest.mark.parametrize("gen", [manhattan_grid, radial_city, mixed_scale])
class TestPatternGenerators:
    def test_cardinality_and_validity(self, gen):
        kpes = gen(300, seed=5)
        assert len(kpes) == 300
        assert all(valid_kpe(k) for k in kpes)
        for k in kpes:
            assert 0.0 <= k.xl <= k.xh <= 1.0
            assert 0.0 <= k.yl <= k.yh <= 1.0

    def test_deterministic(self, gen):
        assert gen(100, seed=6) == gen(100, seed=6)

    def test_empty(self, gen):
        assert gen(0, seed=1) == []

    def test_start_oid(self, gen):
        kpes = gen(10, seed=7, start_oid=777)
        assert kpes[0].oid == 777


class TestPatternShapes:
    def test_manhattan_is_axis_parallel_thin(self):
        kpes = manhattan_grid(500, seed=8)
        thin = sum(
            1
            for k in kpes
            if min(k.xh - k.xl, k.yh - k.yl) < 0.01 < max(k.xh - k.xl, k.yh - k.yl)
        )
        assert thin > 400

    def test_radial_density_decays(self):
        kpes = radial_city(2000, seed=9)
        near = sum(
            1
            for k in kpes
            if math.hypot((k.xl + k.xh) / 2 - 0.5, (k.yl + k.yh) / 2 - 0.5) < 0.2
        )
        assert near > 1200

    def test_mixed_scale_has_both_regimes(self):
        kpes = mixed_scale(2000, seed=10)
        widths = [k.xh - k.xl for k in kpes]
        assert max(widths) > 0.1
        assert sorted(widths)[len(widths) // 2] < 0.01


class TestCodecs:
    def test_kpe_codec_round_trip_float32(self):
        kpe = KPE(42, 0.125, 0.25, 0.5, 0.75)  # exact float32 values
        assert KpeCodec.decode(KpeCodec.encode(kpe)) == kpe
        assert len(KpeCodec.encode(kpe)) == 20

    def test_kpe_codec_float32_precision_contract(self):
        kpe = KPE(1, 0.1, 0.2, 0.3, 0.4)
        decoded = KpeCodec.decode(KpeCodec.encode(kpe))
        assert decoded.oid == 1
        for a, b in zip(decoded[1:], kpe[1:]):
            assert a == pytest.approx(b, abs=1e-7)

    def test_pair_codec(self):
        assert PairCodec.decode(PairCodec.encode((7, 9))) == (7, 9)
        assert len(PairCodec.encode((0, 0))) == 8

    def test_level_entry_codec_sizes_match_levelfile(self):
        from repro.s3j.levelfile import record_bytes_for_level

        for level in range(0, 13):
            codec = LevelEntryCodec(level)
            assert codec.record_bytes == record_bytes_for_level(level)

    def test_level_entry_round_trip(self):
        codec = LevelEntryCodec(5)
        entry = (987, KPE(3, 0.25, 0.5, 0.75, 1.0))
        code, kpe = codec.decode(codec.encode(entry))
        assert code == 987
        assert kpe == entry[1]

    def test_level_entry_code_range_checked(self):
        codec = LevelEntryCodec(2)
        with pytest.raises(ValueError):
            codec.encode((1 << 4, KPE(1, 0, 0, 1, 1)))


class TestPackedPageFile:
    def test_round_trip_and_page_count(self):
        disk = SimulatedDisk(CostModel(page_size=100))  # 5 KPEs per page
        f = PackedPageFile(disk, KpeCodec, "packed")
        kpes = [KPE(i, 0.0, 0.0, 0.5, 0.5) for i in range(12)]
        f.append_bulk(kpes)
        assert f.n_records == 12
        assert f.n_pages == 3
        assert f.read_all() == kpes

    def test_io_charged(self):
        disk = SimulatedDisk(CostModel(page_size=100))
        f = PackedPageFile(disk, PairCodec)
        f.append_bulk([(i, i) for i in range(100)])
        f.read_all()
        counters = disk.total_counters()
        assert counters.pages_written > 0
        assert counters.pages_read == counters.pages_written

    def test_bytes_are_real(self):
        disk = SimulatedDisk(CostModel(page_size=100))
        f = PackedPageFile(disk, KpeCodec)
        f.append_bulk([KPE(1, 0.0, 0.0, 1.0, 1.0)])
        assert f.n_bytes == 20
        assert isinstance(f.pages[0], bytearray)
