#!/usr/bin/env python
"""Quickstart: run a spatial join with every method and compare.

Generates two synthetic road-network datasets, joins them with PBSM
(the paper's overall winner), S3J, and the SSSJ baseline, and prints the
statistics each method reports.  All three must return exactly the same
result set — duplicate-free, thanks to the online Reference Point Method.

Run:  python examples/quickstart.py
"""

from repro import PBSM, S3J, SSSJ, mb
from repro.datasets import polyline_mbrs


def main() -> None:
    # Two road-network-like relations (see repro.datasets for generators).
    roads = polyline_mbrs(20_000, seed=1)
    rivers = polyline_mbrs(15_000, seed=2, start_oid=1_000_000)
    print(f"inputs: {len(roads):,} roads x {len(rivers):,} rivers")

    drivers = [
        PBSM(mb(0.25), internal="sweep_trie", dedup="rpm"),
        PBSM(mb(0.25), internal="sweep_list", dedup="sort"),  # original PBSM
        S3J(mb(0.25), replicate=True),
        S3J(mb(0.25), replicate=False),                       # original S3J
        SSSJ(mb(0.25)),
    ]

    reference = None
    print(
        f"\n{'algorithm':28} {'results':>9} {'repl':>5} {'dups':>7} "
        f"{'io_units':>9} {'sim_sec':>8} {'wall_sec':>8}"
    )
    for driver in drivers:
        result = driver.run(roads, rivers)
        stats = result.stats
        if reference is None:
            reference = result.pair_set()
        assert result.pair_set() == reference, "methods disagree!"
        assert not result.has_duplicates(), "duplicates in the response set!"
        dups = stats.duplicates_suppressed or stats.duplicates_sorted_out
        print(
            f"{stats.algorithm:28} {stats.n_results:>9,} "
            f"{stats.replication_rate:>5.2f} {dups:>7,} "
            f"{stats.io_units:>9,.0f} {stats.sim_seconds:>8.2f} "
            f"{stats.wall_seconds:>8.2f}"
        )

    print(
        "\nAll methods returned the identical, duplicate-free result set "
        f"of {len(reference):,} pairs."
    )
    print(
        "Note how the PBSM(PD) row pays extra I/O for its final "
        "duplicate-removal sort, while the RPM rows suppressed the same "
        "duplicates online for six comparisons apiece."
    )


if __name__ == "__main__":
    main()
