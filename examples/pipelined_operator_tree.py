#!/usr/bin/env python
"""Pipelining in an operator tree: the paper's systems argument, executed.

The paper argues (Sections 1, 3.1, 6) that PBSM's original sort-based
duplicate removal "blocks a pipelined processing in an operator tree"
because nothing can be emitted before the final sort — whereas the online
Reference Point Method streams results out of the join phase as they are
found.  The same holds for SSSJ, which must sort both inputs before the
first output tuple.

This example builds the operator tree

    LimitOp(10) <- FilterOp(left oid is even) <- SpatialJoinOp(...)

over each join driver and measures (a) time to the first result and
(b) time for the LIMIT-10 query — the canonical case where pipelining
pays: a blocking join does all its work before the limit can cut it off.

Run:  python examples/pipelined_operator_tree.py
"""

import time

from repro import PBSM, S3J, SSSJ, mb
from repro.datasets import polyline_mbrs
from repro.operators import FilterOp, LimitOp, SpatialJoinOp, time_to_first_result


def limit_query_seconds(driver, left, right, limit=10) -> float:
    """Wall seconds to answer a LIMIT query over the join."""
    tree = LimitOp(
        FilterOp(SpatialJoinOp(driver, left, right), lambda pair: pair[0] % 2 == 0),
        limit,
    )
    start = time.perf_counter()
    results = list(tree)
    elapsed = time.perf_counter() - start
    assert len(results) <= limit
    return elapsed


def main() -> None:
    left = polyline_mbrs(25_000, seed=5)
    right = polyline_mbrs(25_000, seed=6, start_oid=1_000_000)
    memory = mb(0.25)

    drivers = [
        ("PBSM + RPM (pipelined)", PBSM(memory, dedup="rpm")),
        ("PBSM + sort (blocking)", PBSM(memory, dedup="sort")),
        ("S3J replicated (pipelined)", S3J(memory)),
        ("SSSJ (blocking input sort)", SSSJ(memory)),
    ]

    print(f"{'driver':30} {'first_result':>12} {'full_join':>10} {'limit_10':>9}")
    for name, driver in drivers:
        first, total, _ = time_to_first_result(driver, left, right)
        limited = limit_query_seconds(driver, left, right)
        print(f"{name:30} {first:>11.3f}s {total:>9.3f}s {limited:>8.3f}s")

    print(
        "\nThe pipelined drivers answer the LIMIT-10 query in a fraction "
        "of their full join time; the blocking drivers pay (nearly) the "
        "full cost before the first tuple appears."
    )


if __name__ == "__main__":
    main()
