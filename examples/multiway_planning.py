#!/usr/bin/env python
"""Multiway joins and histogram-based join ordering.

The paper's Section 3.2.3 notes that partition-count estimation needs
DBMS statistics once inputs are intermediate results.  This example puts
the pieces together: grid histograms estimate the pairwise join sizes of
three relations, a greedy optimizer picks a join order, and the cascaded
multiway join executes it — comparing the chosen order against the worst
one.

Run:  python examples/multiway_planning.py
"""

import time

from repro.core.space import Space
from repro.datasets import clustered_rects, polyline_mbrs, uniform_rects
from repro.estimate import GridHistogram, choose_join_order
from repro.operators.multiway import multiway_join
from repro.io.costmodel import mb


def main() -> None:
    relations = {
        "roads": polyline_mbrs(8_000, seed=51),
        "parcels": uniform_rects(8_000, seed=52, start_oid=10**6, mean_edge=0.004),
        "wetlands": clustered_rects(
            800, seed=53, start_oid=2 * 10**6, clusters=3, mean_edge=0.01
        ),
    }
    names = list(relations)
    space = Space.of(*relations.values())
    histograms = [
        GridHistogram.build(rel, space, resolution=16) for rel in relations.values()
    ]

    print("estimated pairwise join sizes:")
    for i in range(3):
        for j in range(i + 1, 3):
            estimate = histograms[i].estimate_join_results(histograms[j])
            print(f"  {names[i]:8} x {names[j]:8} ~= {estimate:>12,.0f}")

    order = choose_join_order(histograms)
    print(f"\nchosen join order: {' -> '.join(names[i] for i in order)}")

    def run(index_order):
        rels = [relations[names[i]] for i in index_order]
        start = time.perf_counter()
        rows = multiway_join(rels, mb(0.25), predicate="common")
        return rows, time.perf_counter() - start

    chosen_rows, chosen_time = run(order)
    worst_rows, worst_time = run(list(reversed(order)))
    # tuples come back in relation order; normalise to compare
    normalise = lambda rows, idx: {tuple(sorted(r)) for r in rows}
    assert normalise(chosen_rows, order) == normalise(worst_rows, order)
    print(
        f"\nchosen order: {len(chosen_rows):,} result triples in "
        f"{chosen_time:.2f}s wall"
    )
    print(f"reverse order: same triples in {worst_time:.2f}s wall")
    print(
        "(both orders return identical triples; the optimizer just keeps "
        "the intermediate result small)"
    )


if __name__ == "__main__":
    main()
