#!/usr/bin/env python
"""The storage substrate up close: codecs, packed pages, buffering.

Most examples use the tuple-based simulation; this one exercises the
byte-level layer that validates the cost model's record sizes — the
20-byte KPE codec, level-dependent level-file records — and shows the
buffer manager turning repeated page accesses into hits.

Run:  python examples/storage_layers.py
"""

from repro.datasets import polyline_mbrs
from repro.io import (
    BufferManager,
    CostModel,
    KpeCodec,
    LevelEntryCodec,
    PackedPageFile,
    SimulatedDisk,
)
from repro.s3j.levelfile import record_bytes_for_level


def main() -> None:
    kpes = polyline_mbrs(5_000, seed=77)

    # --- packed pages: real bytes, charged I/O -------------------------
    disk = SimulatedDisk(CostModel())
    packed = PackedPageFile(disk, KpeCodec, "packed-kpes")
    packed.append_bulk(kpes)
    print(
        f"packed {packed.n_records:,} KPEs into {packed.n_pages:,} pages "
        f"({packed.n_bytes:,} bytes, {KpeCodec.record_bytes} per record)"
    )
    decoded = packed.read_all()
    assert len(decoded) == len(kpes)
    assert all(got.oid == want.oid for got, want in zip(decoded, kpes))
    print(f"round-trip ok; simulated I/O so far: {disk.total_units():.0f} units")

    # --- level-dependent record sizes (S3J, Section 4.2) ---------------
    print("\nlevel-file record sizes (20-byte KPE + 2*level-bit code):")
    for level in (0, 1, 4, 8, 10):
        codec = LevelEntryCodec(level)
        assert codec.record_bytes == record_bytes_for_level(level)
        print(f"  level {level:>2}: {codec.record_bytes} bytes")

    # --- buffer manager -------------------------------------------------
    disk2 = SimulatedDisk()
    buffer = BufferManager(disk2, n_frames=8)
    # A scan with locality: revisit a small working set of pages.
    for _ in range(3):
        for page in range(8):
            buffer.pin(page)
            buffer.unpin(page)
    # Then a wild scan that thrashes.
    for page in range(100, 140):
        buffer.pin(page)
        buffer.unpin(page)
    print(
        f"\nbuffer: {buffer.hits} hits / {buffer.misses} misses "
        f"(hit rate {buffer.hit_rate():.2f}), {buffer.evictions} evictions"
    )
    print(f"simulated reads charged: {disk2.total_counters().pages_read} pages")


if __name__ == "__main__":
    main()
