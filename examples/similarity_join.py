#!/usr/bin/env python
"""Distance (similarity) join — the paper's declared future work (§6).

"Find every hydrant within 50 m of a school": the epsilon-distance join.
The filter-step generalisation is a pure preprocessing step — expand every
MBR by eps/2 — after which any driver in this library (with its online
Reference Point Method) runs unchanged.  This example sweeps eps and shows
result growth, then cross-checks two methods against each other.

Run:  python examples/similarity_join.py
"""

from repro.core.distance import distance_join
from repro.datasets import clustered_rects, uniform_rects
from repro.io.costmodel import mb


def main() -> None:
    schools = clustered_rects(3_000, seed=41, mean_edge=0.004)
    hydrants = uniform_rects(12_000, seed=42, start_oid=1_000_000, mean_edge=0.001)
    print(f"{len(schools):,} schools x {len(hydrants):,} hydrants")

    print(f"\n{'eps':>8} {'pairs':>9} {'sim_sec':>8}")
    for eps in (0.0, 0.005, 0.01, 0.02, 0.05):
        result = distance_join(
            schools, hydrants, eps, mb(0.25), method="pbsm", internal="sweep_trie"
        )
        print(f"{eps:>8} {len(result):>9,} {result.stats.sim_seconds:>8.2f}")

    # Any method computes the same similarity join.
    eps = 0.02
    via_pbsm = distance_join(schools, hydrants, eps, mb(0.25), method="pbsm")
    via_s3j = distance_join(schools, hydrants, eps, mb(0.25), method="s3j")
    assert via_pbsm.pair_set() == via_s3j.pair_set()
    print(
        f"\nPBSM and S3J agree on all {len(via_pbsm):,} pairs at eps={eps} — "
        "the RPM machinery is oblivious to the expansion."
    )


if __name__ == "__main__":
    main()
