#!/usr/bin/env python
"""Map overlay: the workload class the paper's introduction motivates.

A city's street network is joined against its waterway network to find
every street segment that crosses (or runs along) a waterway — the filter
step of a bridge/culvert analysis.  The example shows the standard
two-step architecture:

1. *filter step* (this library): join the MBRs, producing candidates;
2. *refinement step* (sketched here): test the exact segment geometry of
   each candidate.

It also demonstrates why duplicate-free filter output matters: the
refinement step is the expensive part, so every duplicate candidate would
be paid for twice.

Run:  python examples/map_overlay.py
"""

import math

import numpy as np

from repro import PBSM, mb
from repro.core.rect import KPE


def make_network(n_segments: int, seed: int, start_oid: int):
    """A polyline network: returns (KPEs, exact segment endpoints)."""
    rng = np.random.default_rng(seed)
    n_lines = max(1, n_segments // 60)
    kpes = []
    segments = {}
    oid = start_oid
    for _ in range(n_lines):
        x, y = float(rng.random()), float(rng.random())
        theta = rng.uniform(0, 2 * math.pi)
        for _ in range(60):
            theta += rng.normal(0, 0.3)
            step = rng.exponential(0.004)
            nx = min(1.0, max(0.0, x + step * math.cos(theta)))
            ny = min(1.0, max(0.0, y + step * math.sin(theta)))
            kpes.append(
                KPE(oid, min(x, nx), min(y, ny), max(x, nx), max(y, ny))
            )
            segments[oid] = ((x, y), (nx, ny))
            oid += 1
            x, y = nx, ny
            if len(kpes) >= n_segments:
                return kpes[:n_segments], segments
    return kpes, segments


def segments_cross(seg_a, seg_b) -> bool:
    """Exact refinement: do two line segments intersect?"""

    def orient(p, q, r):
        v = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
        return (v > 1e-18) - (v < -1e-18)

    (a, b), (c, d) = seg_a, seg_b
    o1, o2 = orient(a, b, c), orient(a, b, d)
    o3, o4 = orient(c, d, a), orient(c, d, b)
    if o1 != o2 and o3 != o4:
        return True
    def on(p, q, r):
        return (
            orient(p, q, r) == 0
            and min(p[0], q[0]) <= r[0] <= max(p[0], q[0])
            and min(p[1], q[1]) <= r[1] <= max(p[1], q[1])
        )
    return on(a, b, c) or on(a, b, d) or on(c, d, a) or on(c, d, b)


def main() -> None:
    streets, street_geom = make_network(30_000, seed=11, start_oid=0)
    waterways, water_geom = make_network(6_000, seed=22, start_oid=10_000_000)
    print(f"streets: {len(streets):,} segments, waterways: {len(waterways):,}")

    # Filter step: PBSM with the trie sweep and online dedup.
    join = PBSM(mb(0.25), internal="sweep_trie", dedup="rpm")
    result = join.run(streets, waterways)
    stats = result.stats
    print(
        f"filter step: {stats.n_results:,} candidate pairs "
        f"({stats.duplicates_suppressed:,} duplicates suppressed online, "
        f"sim {stats.sim_seconds:.2f}s)"
    )

    # Refinement step: exact geometry on the (duplicate-free) candidates.
    crossings = [
        (street_oid, water_oid)
        for street_oid, water_oid in result.pairs
        if segments_cross(street_geom[street_oid], water_geom[water_oid])
    ]
    print(
        f"refinement step: {len(crossings):,} true crossings "
        f"({stats.n_results - len(crossings):,} false positives filtered)"
    )
    saved = stats.duplicates_suppressed
    print(
        f"every one of the {saved:,} suppressed duplicates would have cost "
        "an extra exact-geometry test here — the paper's first argument "
        "for online duplicate removal."
    )


if __name__ == "__main__":
    main()
