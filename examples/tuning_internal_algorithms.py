#!/usr/bin/env python
"""Choosing the internal join algorithm: one size does not fit all.

The paper's second theme: the right in-memory join depends on partition
size.  PBSM's partitions are large (ideally half the memory), where the
interval-trie sweep shines; S3J's partitions are tiny, where plain nested
loops wins and the trie's overhead is ruinous.

This example joins the same pair of datasets with every combination of
driver and internal algorithm and prints the simulated runtimes plus the
operation counts that explain them.

Run:  python examples/tuning_internal_algorithms.py
"""

from repro import PBSM, S3J, mb
from repro.datasets import polyline_mbrs


def main() -> None:
    left = polyline_mbrs(30_000, seed=31)
    right = polyline_mbrs(30_000, seed=32, start_oid=1_000_000)
    memory = mb(0.5)

    print("PBSM (large partitions):")
    print(f"  {'internal':14} {'sim_sec':>8} {'tests':>12} {'struct_ops':>12}")
    for internal in ("nested_loops", "sweep_list", "sweep_tree", "sweep_trie"):
        result = PBSM(memory, internal=internal).run(left, right)
        join_cpu = result.stats.cpu_by_phase["join"]
        print(
            f"  {internal:14} {result.stats.sim_seconds:>8.2f} "
            f"{join_cpu['intersection_tests']:>12,} "
            f"{join_cpu['structure_ops']:>12,}"
        )

    print("\nS3J (tiny partitions):")
    print(f"  {'internal':14} {'sim_sec':>8} {'tests':>12} {'struct_ops':>12}")
    for internal in ("nested_loops", "sweep_list", "sweep_trie"):
        result = S3J(memory, internal=internal).run(left, right)
        join_cpu = result.stats.cpu_by_phase["join"]
        print(
            f"  {internal:14} {result.stats.sim_seconds:>8.2f} "
            f"{join_cpu['intersection_tests']:>12,} "
            f"{join_cpu['structure_ops']:>12,}"
        )

    print(
        "\nExpected pattern (the paper's Figures 4, 5, 12): the trie sweep "
        "wins inside PBSM by cutting intersection tests on large "
        "partitions; inside S3J the partitions are so small that nested "
        "loops is as good as any sweep and the trie's structure overhead "
        "dominates."
    )


if __name__ == "__main__":
    main()
