"""Figure 13: S3J vs PBSM(list) vs PBSM(trie) joining LA_RR(p) x LA_ST(p).

Coverage grows quadratically in p, driving PBSM's replication up.  For
small p the PBSM variants are similar and S3J substantially slower; for
large p S3J approaches PBSM(list), but PBSM(trie) remains the clear
winner.
"""

import pytest

from repro.bench.experiments import run_fig13

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig13")
def test_fig13_coverage_sweep(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    record("fig13", result)
    p = column(result, "p")
    s3j = column(result, "s3j_sec")
    pbsm_list = column(result, "pbsm_list_sec")
    pbsm_trie = column(result, "pbsm_trie_sec")
    repl = column(result, "pbsm_repl")

    # PBSM's replication rate grows with p (the redundancy pressure that
    # the figure is about).
    assert repl[-1] > repl[0]

    # Small p: S3J is substantially slower than both PBSM variants.
    assert s3j[0] > 1.3 * pbsm_list[0]
    assert s3j[0] > 1.3 * pbsm_trie[0]

    # Large p: S3J closes in on PBSM(list) — the ratio S3J/PBSM(list)
    # shrinks substantially from p=1 to p=10.
    ratio_small = s3j[0] / pbsm_list[0]
    ratio_large = s3j[-1] / pbsm_list[-1]
    assert ratio_large < 0.7 * ratio_small

    # PBSM(trie) is the clear winner at large p.
    assert pbsm_trie[-1] < pbsm_list[-1]
    assert pbsm_trie[-1] < s3j[-1]
