"""Figure 14: the head-to-head — S3J vs PBSM(list) vs PBSM(trie) over
memory for J5.

Paper: S3J performs well for small memories, PBSM(list) is most efficient
mid-range, PBSM(trie) is most suitable for large memories — and overall
the best PBSM beats S3J by about a factor of two on average.
"""

import pytest

from repro.bench.experiments import run_fig14

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig14")
def test_fig14_comparison(benchmark):
    result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    record("fig14", result)
    s3j = column(result, "s3j_sec")
    pbsm_list = column(result, "pbsm_list_sec")
    pbsm_trie = column(result, "pbsm_trie_sec")

    # Large memory: PBSM(trie) is the most suitable method.
    assert pbsm_trie[-1] < pbsm_list[-1]
    assert pbsm_trie[-1] < s3j[-1]

    # Overall: the best PBSM outperforms S3J on average (paper: ~2x).
    best_pbsm_avg = sum(min(l, t) for l, t in zip(pbsm_list, pbsm_trie)) / len(s3j)
    s3j_avg = sum(s3j) / len(s3j)
    assert s3j_avg / best_pbsm_avg > 1.5

    # S3J improves steadily with memory (cheaper level-file sorting).
    # NOTE: the paper additionally shows S3J *winning* at small memories;
    # that crossover does not reproduce under our cost model (see the
    # Figure 14 entry in EXPERIMENTS.md for the analysis), so it is
    # deliberately not asserted here.
    assert s3j[-1] < s3j[0]
