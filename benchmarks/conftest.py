"""Shared helpers for the benchmark suite.

Every bench runs one experiment from :mod:`repro.bench.experiments` exactly
once (``benchmark.pedantic(rounds=1)``), prints the reproduced table, saves
it under ``benchmarks/results/``, and asserts the *shape* claims the paper
makes about that table or figure.  Absolute numbers are not asserted — the
substrate is a simulator, not the authors' SPARCstation.

Run with::

    pytest benchmarks/ --benchmark-only

Scale is controlled by the ``REPRO_SCALE`` environment variable (default
0.10 of the paper's dataset cardinalities).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, result) -> None:
    """Print an experiment result and persist it under results/."""
    text = result.to_text()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def column(result, name: str):
    """Extract one column of an ExperimentResult as a list."""
    idx = result.columns.index(name)
    return [row[idx] for row in result.rows]
