"""Shared helpers for the benchmark suite.

Every bench runs one experiment from :mod:`repro.bench.experiments` exactly
once (``benchmark.pedantic(rounds=1)``), prints the reproduced table, saves
it under ``benchmarks/results/``, and asserts the *shape* claims the paper
makes about that table or figure.  Absolute numbers are not asserted — the
substrate is a simulator, not the authors' SPARCstation.

Each recorded experiment is persisted twice: the aligned text table
(``results/<name>.txt``, unchanged) and a machine-readable
``results/BENCH_<name>.json`` carrying the same rows plus the execution
environment (backend, CPU count, Python version) and any bench-specific
metadata (workload, wall seconds, pairs/sec) passed through ``record``.

Run with::

    pytest benchmarks/ --benchmark-only

Scale is controlled by the ``REPRO_SCALE`` environment variable (default
0.10 of the paper's dataset cardinalities).
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

from repro.kernels.backend import active_backend, cpu_count

# Benches deliberately oversubscribe small boxes to show pool scaling.
os.environ.setdefault("REPRO_MAX_WORKERS", "4")

RESULTS_DIR = Path(__file__).parent / "results"


def environment() -> dict:
    """The execution environment every BENCH_*.json records."""
    return {
        "backend": active_backend(),
        "cpu_count": cpu_count(),
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def record(name: str, result, tracer=None, **meta) -> None:
    """Print an experiment result and persist it under results/.

    Writes the aligned text table to ``<name>.txt`` and a JSON document to
    ``BENCH_<name>.json``.  Extra keyword arguments (``workload=...``,
    ``wall_seconds=...``, ``pairs_per_second=...``) are embedded in the
    JSON so downstream tooling needs no table parsing.

    A recording :class:`~repro.obs.Tracer` is persisted alongside as
    ``BENCH_<name>.trace.jsonl`` — the span-level view of the same run
    (``python -m repro trace`` summarises it).
    """
    text = result.to_text()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        result.to_json(environment=environment(), **meta) + "\n"
    )
    if tracer is not None and tracer.recording:
        tracer.write(RESULTS_DIR / f"BENCH_{name}.trace.jsonl")


def column(result, name: str):
    """Extract one column of an ExperimentResult as a list."""
    idx = result.columns.index(name)
    return [row[idx] for row in result.rows]
