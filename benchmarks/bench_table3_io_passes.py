"""Table 3: minimum I/O passes over the data per phase.

Paper: partitioning writes the data once for both methods; PBSM
occasionally repartitions ("+") while S3J always sorts its level files
(read + write = 2 passes, "2+"); the join phase reads the data once.
"""

import pytest

from repro.bench.experiments import run_table3

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="table3")
def test_table3_io_passes(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    record("table3", result)
    phases = column(result, "phase")
    pbsm = dict(zip(phases, column(result, "PBSM_passes")))
    s3j = dict(zip(phases, column(result, "S3J_passes")))

    # Partitioning: about one pass (plus replication and positioning).
    assert 0.8 <= pbsm["partition (write)"] <= 3.0
    assert 0.8 <= s3j["partition (write)"] <= 6.0

    # Middle phase: S3J must pay its sorting passes (about 2 when the
    # level files fit in memory); PBSM's repartitioning is occasional.
    assert s3j["repartition/sort"] >= 1.5
    assert pbsm["repartition/sort"] < s3j["repartition/sort"] + 2.0

    # Join: both read the partitioned data once.
    assert 0.8 <= pbsm["join (read)"] <= 3.0
    assert 0.8 <= s3j["join (read)"] <= 6.0
