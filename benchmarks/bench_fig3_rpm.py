"""Figure 3: PBSM duplicate removal — final sort (PD) vs online RPM.

Figure 3a: the I/O overhead of the duplicate-removal sort grows with the
result set, and RPM avoids it completely.  Figure 3b: PBSM with RPM is
considerably faster overall.
"""

import pytest

from repro.bench.experiments import run_fig3

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig3")
def test_fig3_rpm_vs_sort(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    record("fig3", result)
    io_dedup = column(result, "PD_io_dedup")
    io_base = column(result, "PD_io_base")
    rp_io = column(result, "RP_io")
    pd_runtime = column(result, "PD_runtime")
    rp_runtime = column(result, "RP_runtime")
    n_results = column(result, "results")

    # Fig 3a: the dedup overhead grows with the result set...
    assert n_results == sorted(n_results)
    assert io_dedup == sorted(io_dedup)
    assert io_dedup[-1] > 3 * io_dedup[0]
    # ... and RPM's I/O equals the PD base I/O (no dedup phase at all).
    for base, rpm in zip(io_base, rp_io):
        assert rpm == pytest.approx(base, rel=0.01)

    # Fig 3b: RPM is faster on every join, increasingly so.
    for pd, rp in zip(pd_runtime, rp_runtime):
        assert rp < pd
    gains = [pd / rp for pd, rp in zip(pd_runtime, rp_runtime)]
    assert gains[-1] > gains[0]
