"""Figure 4: internal plane-sweep algorithms applied in main memory.

The trie-organised sweep beats the list-organised sweep on every join,
with a gain that grows with join selectivity; for J5 the paper quotes
236 s (trie) vs 768 s (list), more than a factor of three.
"""

import pytest

from repro.bench.experiments import run_fig4

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig4")
def test_fig4_internal_algorithms(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    record("fig4", result)
    joins = column(result, "join")
    list_sec = dict(zip(joins, column(result, "list_sec")))
    trie_sec = dict(zip(joins, column(result, "trie_sec")))

    # Trie superior for all joins.
    for join in joins:
        assert trie_sec[join] < list_sec[join], join

    # The performance gain grows with the selectivity of the join
    # (J1 -> J4 have identical inputs but growing selectivity).
    gains = [list_sec[j] / trie_sec[j] for j in ("J1", "J2", "J3", "J4")]
    assert gains == sorted(gains)

    # J5: more than a factor of three (the paper: 768 / 236 ~= 3.25).
    assert list_sec["J5"] / trie_sec["J5"] > 3.0
