"""Table 1: the dataset inventory (cardinalities and coverage)."""

import pytest

from repro.bench.experiments import run_table1

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="table1")
def test_table1_datasets(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record("table1", result)
    names = column(result, "dataset")
    measured = dict(zip(names, column(result, "coverage")))
    target = dict(zip(names, column(result, "paper_coverage")))
    # Coverage must be calibrated to Table 1 for the base datasets.
    for name in ("LA_RR", "LA_ST", "CAL_ST"):
        assert measured[name] == pytest.approx(target[name], rel=0.05)
    # The (p) variants follow the ~p^2 law (slightly below, since the
    # global MBR grows with the rectangles).
    assert measured["LA_RR(2)"] == pytest.approx(target["LA_RR(2)"], rel=0.15)
    assert measured["LA_ST(3)"] == pytest.approx(target["LA_ST(3)"], rel=0.15)
    # CAL_ST must remain the largest dataset.
    ns = dict(zip(names, column(result, "n_mbrs")))
    assert ns["CAL_ST"] > ns["LA_RR"] and ns["CAL_ST"] > ns["LA_ST"]
