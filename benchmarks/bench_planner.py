"""Planner: method="auto" vs every fixed method over the planner sweep.

The Fig. 4/12-style grid (uniform/clustered/mixed x tight/comfortable/
all-fits memory) has no fixed winner; the cost-based planner must track
the best fixed method within 1.25x everywhere, and replanning the same
workload must hit the plan cache.
"""

import pytest

from repro.bench.experiments import run_planner_sweep

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="planner")
def test_planner_auto_tracks_best_fixed(benchmark):
    # n=4000 per side: the size at which the three regimes separate
    # (PBSM on uniform, SHJ on clustered, memory-dependent on mixed).
    result = benchmark.pedantic(
        run_planner_sweep, kwargs={"n": 4000}, rounds=1, iterations=1
    )
    record("planner", result)
    workloads = column(result, "workload")
    ratios = dict(zip(workloads, column(result, "ratio")))
    plans = dict(zip(workloads, column(result, "auto_plan")))

    # Auto stays within 1.25x of the best fixed method on every point.
    for workload in workloads:
        assert ratios[workload] <= 1.25, (workload, plans[workload])

    # The choice is adaptive: the grid does not collapse to one plan.
    assert len(set(plans.values())) > 1

    # Second planning of each workload comes from the plan cache, and a
    # cache hit skips profiling: it must be far cheaper than planning.
    assert all(column(result, "cached"))
    plan_ms = column(result, "plan_ms")
    replan_ms = column(result, "replan_ms")
    for cold, warm in zip(plan_ms, replan_ms):
        assert warm < cold / 5
