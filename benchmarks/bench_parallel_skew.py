"""Bench A10: work stealing + stripe splitting vs static LPT under skew.

The claim under test: on a 100k-rectangle-per-side Zipf workload whose
hottest tile carries the overwhelming majority of the join work, static
LPT chunking strands every worker behind the mega-partition, while the
stealing scheduler stripes that partition into duplicate-free parts and
keeps the pool busy — a >= 1.5x smaller simulated join makespan at two
workers, byte-identical output all the way.

The ratio is asserted in *simulated* seconds (``lpt_schedule`` over the
measured per-task costs), which depends only on operation counts — a
single-CPU container reproduces it exactly.  The ``sim-serial`` row runs
the same tasks at W=1, so its makespan is the total work; dividing it by
``W * makespan`` turns the other rows into deterministic utilization
figures (the quantity the CI skew-smoke job gates on).  Real wall-clock
ratios are recorded in the JSON, and asserted only when the box has the
cores to show them.

Workload construction: at these constants the engine estimates 19
partitions and lays a 9x9 tile grid over the data MBR.  ``zipf_rects``
with ``grid=18`` places records on a tile lattice exactly twice as fine,
so every Zipf tile — the hottest one included — falls strictly inside
one engine tile and hashes to a single partition.  Two corner "pin"
rectangles per side fix the data MBR to the exact unit square so the two
lattices stay aligned.  Without the alignment the hot tile straddles an
engine tile boundary, its records split into two medium partitions, and
static LPT at W=2 balances them by luck — hiding exactly the skew this
bench exists to measure.
"""

import time

import pytest

from repro.bench.render import ExperimentResult
from repro.core.phases import PHASE_JOIN
from repro.core.rect import KPE
from repro.datasets.synthetic import zipf_rects
from repro.io.costmodel import mb
from repro.kernels.backend import cpu_count, numpy_enabled
from repro.kernels.shm import shm_enabled
from repro.pbsm import PBSM
from repro.pbsm.parallel import ParallelPBSM

from benchmarks.conftest import column, record

#: 100k rectangles a side; alpha=4 puts ~92% of them in the hottest tile.
N_SIDE = 100_000
ALPHA = 4.0
MEAN_EDGE = 2e-4
ZIPF_GRID = 18
TILE_SEED = 7
MEMORY = mb(0.25)
WORKERS = 2

MIN_SIM_RATIO = 1.5
#: Deterministic (simulated) utilization gates: stealing keeps both
#: workers fed; static leaves one of them idling behind the mega-task.
MIN_STEAL_SIM_UTILIZATION = 0.85
MAX_STATIC_SIM_UTILIZATION = 0.70


def _pins(start_oid):
    """Two corner rectangles pinning the data MBR to the unit square."""
    eps = 1e-9
    return [
        KPE(start_oid, 0.0, 0.0, eps, eps),
        KPE(start_oid + 1, 1.0 - eps, 1.0 - eps, 1.0, 1.0),
    ]


def skewed_workload():
    left = zipf_rects(
        N_SIDE,
        seed=41,
        alpha=ALPHA,
        mean_edge=MEAN_EDGE,
        grid=ZIPF_GRID,
        tile_seed=TILE_SEED,
    ) + _pins(10_000_000)
    right = zipf_rects(
        N_SIDE,
        seed=42,
        alpha=ALPHA,
        mean_edge=MEAN_EDGE,
        grid=ZIPF_GRID,
        tile_seed=TILE_SEED,
        start_oid=1_000_000,
    ) + _pins(20_000_000)
    return left, right


def _run(executor, scheduler, shared_memory, workers, left, right):
    join = ParallelPBSM(
        MEMORY,
        workers,
        internal="sweep_numpy",
        executor=executor,
        scheduler=scheduler,
        shared_memory=shared_memory,
    )
    started = time.perf_counter()
    result = join.run(left, right)
    return result, time.perf_counter() - started


def run_parallel_skew_bench() -> ExperimentResult:
    left, right = skewed_workload()
    sequential = PBSM(MEMORY, internal="sweep_numpy", dedup="rpm").run(
        left, right
    )
    reference_pairs = sequential.pair_set()

    shm = shm_enabled()
    configs = [
        # (row label, executor, scheduler, shared_memory, workers)
        ("sim-serial", "simulated", "static", False, 1),
        ("sim-static", "simulated", "static", False, WORKERS),
        ("sim-stealing", "simulated", "stealing", False, WORKERS),
        ("static", "process", "static", shm, WORKERS),
        ("stealing", "process", "stealing", shm, WORKERS),
        ("thread-stealing", "thread", "stealing", False, WORKERS),
    ]
    rows = []
    for label, executor, scheduler, shared, workers in configs:
        result, wall = _run(executor, scheduler, shared, workers, left, right)
        stats = result.stats
        assert result.pair_set() == reference_pairs  # byte-identical join
        assert not result.has_duplicates()
        rows.append(
            (
                label,
                executor,
                scheduler,
                round(stats.sim_seconds_by_phase[PHASE_JOIN], 3),
                round(stats.join_makespan_seconds, 3),
                round(stats.join_busy_seconds, 3),
                round(stats.worker_utilization, 3),
                stats.tasks_stolen,
                round(stats.scheduler_idle_seconds, 3),
                round(wall, 3),
                stats.n_results,
            )
        )
    return ExperimentResult(
        exp_id="Ablation A10",
        title=f"Skewed parallel PBSM, {N_SIDE // 1000}k x {N_SIDE // 1000}k, W={WORKERS}",
        columns=[
            "config",
            "executor",
            "scheduler",
            "sim_makespan",
            "makespan_sec",
            "busy_sec",
            "utilization",
            "stolen",
            "idle_sec",
            "wall_sec",
            "results",
        ],
        rows=rows,
        paper_claim=(
            "stripe splitting keeps RPM duplicate-free across stripe "
            "boundaries; stealing bounds the makespan by the largest "
            "*stripe*, not the largest partition"
        ),
    )


@pytest.mark.skipif(not numpy_enabled(), reason="needs the columnar kernel")
@pytest.mark.benchmark(group="ablations")
def test_parallel_skew(benchmark):
    result = benchmark.pedantic(run_parallel_skew_bench, rounds=1, iterations=1)
    record(
        "parallel_skew",
        result,
        workload=f"zipf(alpha={ALPHA}, grid={ZIPF_GRID}) {N_SIDE}x{N_SIDE}",
        workers=WORKERS,
        min_sim_ratio=MIN_SIM_RATIO,
        min_steal_sim_utilization=MIN_STEAL_SIM_UTILIZATION,
        max_static_sim_utilization=MAX_STATIC_SIM_UTILIZATION,
    )
    labels = column(result, "config")
    sim = dict(zip(labels, column(result, "sim_makespan")))
    results = set(column(result, "results"))
    assert len(results) == 1  # scheduler choice cannot change the answer

    # The deterministic headline: splitting the mega-partition drops the
    # simulated join makespan by >= 1.5x at two workers.
    assert sim["sim-static"] / sim["sim-stealing"] >= MIN_SIM_RATIO

    # sim-serial's makespan is the total work, so total / (W * makespan)
    # is a deterministic utilization: stealing keeps both workers fed,
    # static strands one behind the unsplit mega-partition.
    total_work = sim["sim-serial"]
    assert total_work / (WORKERS * sim["sim-stealing"]) >= (
        MIN_STEAL_SIM_UTILIZATION
    )
    assert total_work / (WORKERS * sim["sim-static"]) <= (
        MAX_STATIC_SIM_UTILIZATION
    )

    # Real-wall claims need real cores.
    if cpu_count() >= 2:
        makespan = dict(zip(labels, column(result, "makespan_sec")))
        assert makespan["stealing"] <= makespan["static"] * 1.10
