"""Bench A11: duplicate handling — sort (PD) vs RPM vs two-layer avoidance.

The claim under test: at *matched grids* (same memory budget, same
tiles-per-partition, hence identical tile layout) the two-layer
corner-class scheme turns duplicate handling from a per-pair charge
into a per-replica charge — its simulated join phase undercuts RPM's,
it pays no dedup phase at all (the sort baseline pays both), and the
result set is identical pair-for-pair.  The grid matters: two-layer
mini-joins lose y-pruning below tile height, so the race is run at the
fine grids the partition estimator actually chooses (see
docs/duplicates.md).

Also recorded: ``method="auto"`` enumerates the twolayer candidates,
so the planner can *choose* avoidance rather than having it forced.
"""

import time

import pytest

from repro.bench.render import ExperimentResult
from repro.core.phases import PHASE_DEDUP, PHASE_JOIN
from repro.datasets.synthetic import uniform_rects, zipf_rects
from repro.io.costmodel import mb
from repro.kernels.backend import numpy_enabled
from repro.pbsm import PBSM
from repro.planner import plan_join

from benchmarks.conftest import column, record

N_SIDE = 30_000
#: Rectangles comparable to the tile size: replication (and with it
#: RPM's per-pair charge) is what the schemes disagree about, so the
#: race is run where replication actually happens.  Tiny rectangles on
#: coarse tiles would instead measure y-striping granularity (see the
#: caveat in docs/duplicates.md).
MEAN_EDGE = 0.02
MEMORY = mb(1.0)
TILES_PER_PARTITION = 64
DEDUPS = ("sort", "rpm", "twolayer")


def workloads():
    return {
        "uniform": (
            uniform_rects(N_SIDE, seed=11, mean_edge=MEAN_EDGE),
            uniform_rects(
                N_SIDE, seed=12, mean_edge=MEAN_EDGE, start_oid=10**6
            ),
        ),
        "zipf": (
            zipf_rects(N_SIDE, seed=21, alpha=1.2, mean_edge=MEAN_EDGE),
            zipf_rects(
                N_SIDE, seed=22, alpha=1.2, mean_edge=MEAN_EDGE,
                start_oid=10**6,
            ),
        ),
    }


def run_twolayer_bench() -> ExperimentResult:
    rows = []
    for workload, (left, right) in workloads().items():
        reference = None
        for dedup in DEDUPS:
            join = PBSM(
                MEMORY,
                internal="sweep_numpy",
                dedup=dedup,
                tiles_per_partition=TILES_PER_PARTITION,
            )
            started = time.perf_counter()
            result = join.run(left, right)
            wall = time.perf_counter() - started
            stats = result.stats
            if reference is None:
                reference = result.pair_set()
            else:
                assert result.pair_set() == reference  # same answer
            assert not result.has_duplicates()
            join_cpu = stats.cpu_by_phase[PHASE_JOIN]
            rows.append(
                (
                    workload,
                    dedup,
                    round(stats.sim_seconds_by_phase[PHASE_JOIN], 3),
                    round(stats.sim_seconds_by_phase.get(PHASE_DEDUP, 0.0), 3),
                    round(stats.sim_seconds, 3),
                    join_cpu.get("refpoint_tests", 0),
                    stats.duplicates_suppressed + stats.duplicates_sorted_out,
                    round(wall, 3),
                    stats.n_results,
                )
            )
    return ExperimentResult(
        exp_id="Ablation A11",
        title=(
            f"Duplicate handling at matched grids, "
            f"{N_SIDE // 1000}k x {N_SIDE // 1000}k, "
            f"tpp={TILES_PER_PARTITION}"
        ),
        columns=[
            "workload",
            "dedup",
            "sim_join",
            "sim_dedup",
            "sim_total",
            "refpoint_tests",
            "dups_removed",
            "wall_sec",
            "results",
        ],
        rows=rows,
        paper_claim=(
            "avoidance beats detection: two-layer pays per replica, RPM "
            "per detected pair, the sort baseline per result page — at "
            "equal grids the two-layer join phase is the cheapest and "
            "needs no dedup phase at all"
        ),
    )


@pytest.mark.skipif(not numpy_enabled(), reason="needs the columnar kernel")
@pytest.mark.benchmark(group="ablations")
def test_twolayer_vs_rpm_vs_sort(benchmark):
    result = benchmark.pedantic(run_twolayer_bench, rounds=1, iterations=1)

    # method="auto" must enumerate the avoidance scheme as a costed
    # choice, not leave it CLI-only.
    left, right = workloads()["uniform"]
    plan = plan_join(left, right, MEMORY)
    twolayer_cands = [
        c for c in plan.candidates if c.kwargs.get("dedup") == "twolayer"
    ]
    assert twolayer_cands, "planner does not enumerate dedup=twolayer"

    record(
        "twolayer",
        result,
        workload=(
            f"uniform + zipf(alpha=1.2), mean_edge={MEAN_EDGE}, "
            f"{N_SIDE}x{N_SIDE}"
        ),
        memory_mb=1.0,
        tiles_per_partition=TILES_PER_PARTITION,
        auto_enumerates_twolayer=True,
        auto_twolayer_candidates=[c.describe() for c in twolayer_cands][:4],
    )

    labels = list(zip(column(result, "workload"), column(result, "dedup")))
    sim_join = dict(zip(labels, column(result, "sim_join")))
    sim_dedup = dict(zip(labels, column(result, "sim_dedup")))
    refpoints = dict(zip(labels, column(result, "refpoint_tests")))
    dups = dict(zip(labels, column(result, "dups_removed")))

    for workload in ("uniform", "zipf"):
        # The workload genuinely replicates: the sort baseline really
        # has duplicates to remove, or the race proves nothing.
        assert dups[(workload, "sort")] > 0
        # The headline: avoidance <= detection in the join phase itself,
        # at the identical grid.  (The batched RPM charges its per-pair
        # ownership mask as batch_ops, already inside sim_join.)
        assert sim_join[(workload, "twolayer")] <= sim_join[(workload, "rpm")]
        # Two-layer removes nothing because it generates nothing to
        # remove, and runs zero scalar ownership tests.
        assert dups[(workload, "twolayer")] == 0
        assert refpoints[(workload, "twolayer")] == 0
        # Only the sort baseline pays an offline dedup phase.
        assert sim_dedup[(workload, "sort")] > 0
        assert sim_dedup[(workload, "rpm")] == 0
        assert sim_dedup[(workload, "twolayer")] == 0
