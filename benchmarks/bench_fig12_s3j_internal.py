"""Figure 12: internal join algorithms inside S3J (J5).

S3J's partitions are tiny, so the list-based plane sweep is only
marginally different from plain nested loops, and the trie-based sweep —
excellent for PBSM — is strictly worse (the paper left it off the plot
because its overhead was so high; we report it).
"""

import pytest

from repro.bench.experiments import run_fig12

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig12")
def test_fig12_s3j_internal(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    record("fig12", result)
    nested = column(result, "nested_loops_sec")
    sweep = column(result, "sweep_list_sec")
    trie = column(result, "sweep_trie_sec")

    # Nested loops and the list sweep are within ~25% of each other at
    # every budget ("performs only slightly faster than nested loops").
    for n, s in zip(nested, sweep):
        assert abs(n - s) / n < 0.25

    # The trie sweep is the worst option inside S3J at every budget.
    for n, s, t in zip(nested, sweep, trie):
        assert t > n and t > s
