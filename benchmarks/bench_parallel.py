"""Bench A7: parallel PBSM speedup (simulated shared-nothing workers).

The paper's related work cites parallel spatial join processing
[BKS 96, Pat 98]; RPM is what makes PBSM embarrassingly parallel (each
result is owned by exactly one partition, hence one worker).  The speedup
curve must rise with workers and flatten at the Amdahl bound set by the
sequential partitioning phase and the largest single partition.
"""

import pytest

from repro.core.phases import PHASE_PARTITION
from repro.bench.render import ExperimentResult
from repro.bench.workloads import la_join, memory_for_fraction
from repro.pbsm.parallel import ParallelPBSM

from benchmarks.conftest import column, record


def run_parallel_speedup() -> ExperimentResult:
    left, right = la_join("J2")
    memory = memory_for_fraction(left, right, 0.1)
    base = None
    rows = []
    for workers in (1, 2, 4, 8, 16):
        result = ParallelPBSM(memory, workers=workers).run(left, right)
        total = sum(result.stats.sim_seconds_by_phase.values())
        if base is None:
            base = total
        rows.append(
            (
                workers,
                round(total, 2),
                round(base / total, 2),
                round(result.stats.sim_seconds_by_phase[PHASE_PARTITION], 2),
                result.stats.n_results,
            )
        )
    return ExperimentResult(
        exp_id="Ablation A7",
        title="Parallel PBSM speedup over simulated workers (J2)",
        columns=["workers", "total_sec", "speedup", "partition_sec", "results"],
        rows=rows,
        paper_claim=(
            "partition pairs are independent under RPM; speedup bounded by "
            "the sequential partitioning phase (Amdahl)"
        ),
    )


@pytest.mark.benchmark(group="ablations")
def test_parallel_speedup(benchmark):
    result = benchmark.pedantic(run_parallel_speedup, rounds=1, iterations=1)
    record("ablation_parallel", result)
    speedups = column(result, "speedup")
    totals = column(result, "total_sec")
    results = set(column(result, "results"))
    partition = column(result, "partition_sec")
    assert len(results) == 1  # worker count cannot change the answer
    # Monotone non-increasing runtime, meaningful speedup by 8 workers.
    assert totals == sorted(totals, reverse=True)
    assert speedups[3] > 1.5
    # Amdahl: total never drops below the sequential partitioning phase.
    assert all(t >= p for t, p in zip(totals, partition))
