"""Micro-benchmarks of the internal join algorithms (pytest-benchmark).

Unlike the figure benches (which run a whole experiment once), these are
classic repeated-timing micro-benchmarks of the in-memory joins on fixed
partition-sized inputs — the regime the paper's internal-algorithm
discussion (Sections 3.2.2 and 4.4.1) is about.
"""

import pytest

from repro.core.stats import CpuCounters
from repro.datasets import uniform_rects
from repro.internal import INTERNAL_ALGORITHMS

# A PBSM-sized partition pair and an S3J-sized one.
PBSM_PARTITION = (
    uniform_rects(2_000, seed=71, mean_edge=0.01),
    uniform_rects(2_000, seed=72, start_oid=10_000, mean_edge=0.01),
)
S3J_PARTITION = (
    uniform_rects(12, seed=73, mean_edge=0.1),
    uniform_rects(12, seed=74, start_oid=10_000, mean_edge=0.1),
)


def _run(algo, left, right):
    counters = CpuCounters()
    sink = []
    algo(left, right, lambda r, s: sink.append(None), counters)
    return len(sink)


@pytest.mark.benchmark(group="internal-pbsm-sized")
@pytest.mark.parametrize("name", ["sweep_list", "sweep_trie", "sweep_tree"])
def test_internal_on_pbsm_sized_partition(benchmark, name):
    left, right = PBSM_PARTITION
    n = benchmark(_run, INTERNAL_ALGORITHMS[name], left, right)
    assert n > 0


@pytest.mark.benchmark(group="internal-s3j-sized")
@pytest.mark.parametrize("name", ["nested_loops", "sweep_list", "sweep_trie"])
def test_internal_on_s3j_sized_partition(benchmark, name):
    left, right = S3J_PARTITION
    benchmark(_run, INTERNAL_ALGORITHMS[name], left, right)


@pytest.mark.benchmark(group="refpoint")
def test_reference_point_cost(benchmark):
    """The RPM primitive itself: the paper claims at most six comparisons
    per produced result — it must be orders of magnitude cheaper than a
    join."""
    from repro.core.refpoint import reference_point

    r = (1, 0.2, 0.2, 0.6, 0.6)
    s = (2, 0.4, 0.4, 0.8, 0.8)
    benchmark(reference_point, r, s)
