"""Figure 6: the share of PBSM's runtime spent repartitioning (J5).

Repartitioning contributes substantially only for small memories and its
influence diminishes as memory grows (reaching zero once every pair fits).
"""

import pytest

from repro.bench.experiments import run_fig6

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig6")
def test_fig6_repartition_share(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    record("fig6", result)
    share = column(result, "repart_%runtime")
    events = column(result, "events")

    # Substantial at the smallest memory, zero at the largest.
    assert share[0] > 10.0
    assert share[-1] == 0.0
    assert events[-1] == 0

    # Diminishing influence: the average share over the small-memory half
    # exceeds the average over the large-memory half.
    half = len(share) // 2
    assert sum(share[:half]) / half > sum(share[half:]) / (len(share) - half)
