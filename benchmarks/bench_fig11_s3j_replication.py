"""Figure 11: S3J original vs S3J with data replication (J5).

The paper's headline S3J result: with size-separation replication the CPU
time drops by an order of magnitude and the total runtime by a factor of
2.5 to 4, while the redundancy stays bounded (at most four copies).
"""

import pytest

from repro.bench.experiments import run_fig11

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig11")
def test_fig11_s3j_replication(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    record("fig11", result)
    orig_cpu = column(result, "orig_cpu")
    repl_cpu = column(result, "repl_cpu")
    orig_total = column(result, "orig_total")
    repl_total = column(result, "repl_total")
    repl_rate = column(result, "repl_rate")

    for oc, rc in zip(orig_cpu, repl_cpu):
        # "an order of magnitude" — require at least 5x at every budget.
        assert oc / rc > 5.0

    for ot, rt in zip(orig_total, repl_total):
        # "by a factor 2.5 to 4" — require at least 2x at every budget.
        assert ot / rt > 2.0

    # The replication overhead must stay within the paper's bound.
    assert all(1.0 <= r <= 4.0 for r in repl_rate)
