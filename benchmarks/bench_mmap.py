"""Bench A10: build-once/join-many with memory-mapped ``.rcd`` datasets.

The claim under test: reopening a built 1M-rectangle ``.rcd`` dataset is
at least 100x faster than re-ingesting the same records from a parsed
format (the open is a header read plus one ``np.memmap``, independent of
cardinality), while joins running straight off the mapping — sequential
and parallel over shared memory — stay byte-identical to joins over the
in-memory relation, and ``repro serve`` pins a registered ``.rcd``
without parsing a single record.

Scale knob: ``REPRO_MMAP_N`` overrides the 1M-rect cardinality (the CI
``mmap-smoke`` job runs a reduced size; the speedup floor scales with it
since mapped-open cost is flat).
"""

import os
import tempfile
import time
from pathlib import Path

import pytest

from repro import spatial_join
from repro.bench.render import ExperimentResult
from repro.datasets import uniform_rects
from repro.datasets.fileio import load_relation, save_relation
from repro.io.costmodel import mb
from repro.kernels.backend import cpu_count, numpy_enabled
from repro.kernels.shm import shm_enabled

from benchmarks.conftest import column, record

#: Records in the reopen-vs-ingest measurement (the ISSUE's 1M target).
N_RECTS = int(os.environ.get("REPRO_MMAP_N", "1000000"))

#: Records per side of the join-identity check (joins at 1M would
#: dominate the bench without sharpening the reopen claim).
N_JOIN = min(N_RECTS, 50_000)

MEMORY = mb(2.5)

#: The acceptance floor: mapped reopen vs parsed re-ingest.
MIN_REOPEN_SPEEDUP = 100.0

#: A mapped open must stay O(ms) at any cardinality.
MAX_REOPEN_SECONDS = 0.050


def _best_of(fn, rounds=3):
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def run_mmap_bench() -> ExperimentResult:
    workdir = Path(tempfile.mkdtemp(prefix="bench_mmap_"))
    kpes = uniform_rects(N_RECTS, seed=41)
    npy_path = workdir / "rel.npy"
    rcd_path = workdir / "rel.rcd"
    rows = []

    save_relation(kpes, npy_path)
    start = time.perf_counter()
    parsed = load_relation(npy_path)
    ingest_seconds = time.perf_counter() - start
    assert list(parsed[:16]) == list(kpes[:16])
    rows.append(("ingest .npy (parse+validate)", N_RECTS, ingest_seconds, 1.0))

    start = time.perf_counter()
    save_relation(kpes, rcd_path)
    build_seconds = time.perf_counter() - start
    rows.append(("build .rcd (one-time)", N_RECTS, build_seconds, None))

    mapped, reopen_seconds = _best_of(lambda: load_relation(rcd_path))
    assert getattr(mapped, "mapped", False)
    assert len(mapped) == N_RECTS
    speedup = ingest_seconds / reopen_seconds
    rows.append(("reopen .rcd (mmap)", N_RECTS, reopen_seconds, speedup))

    # Byte-identity: the mapped store must be invisible to the engines.
    join_kpes = kpes[:N_JOIN] if N_JOIN < N_RECTS else kpes
    join_rcd = workdir / "join.rcd"
    save_relation(join_kpes, join_rcd)
    join_mapped = load_relation(join_rcd)

    start = time.perf_counter()
    memory_result = spatial_join(
        list(join_kpes), list(join_kpes), MEMORY, method="pbsm"
    )
    seq_mem_seconds = time.perf_counter() - start
    start = time.perf_counter()
    mapped_result = spatial_join(join_mapped, join_mapped, MEMORY, method="pbsm")
    seq_map_seconds = time.perf_counter() - start
    assert mapped_result.pairs == memory_result.pairs
    rows.append(("join sequential (in-memory)", N_JOIN, seq_mem_seconds, None))
    rows.append(("join sequential (mapped)", N_JOIN, seq_map_seconds, None))

    if shm_enabled():
        par_memory = spatial_join(
            list(join_kpes),
            list(join_kpes),
            MEMORY,
            method="pbsm",
            workers=2,
            shared_memory=True,
        )
        start = time.perf_counter()
        par_mapped = spatial_join(
            join_mapped,
            join_mapped,
            MEMORY,
            method="pbsm",
            workers=2,
            shared_memory=True,
        )
        par_seconds = time.perf_counter() - start
        # byte-identity is per engine (parallel emits in partition order)
        assert par_mapped.pairs == par_memory.pairs
        assert sorted(par_mapped.pairs) == sorted(memory_result.pairs)
        rows.append(("join parallel shm (mapped)", N_JOIN, par_seconds, None))

        # serve: pinning a registered .rcd copies mapping -> segment with
        # no per-record parsing (the entry stays a MappedRelation).
        from repro.kernels.mmapstore import MappedRelation
        from repro.serve import DatasetRegistry

        registry = DatasetRegistry(pin=True)
        try:
            start = time.perf_counter()
            entry = registry.register_file("bench", str(join_rcd))
            pin_seconds = time.perf_counter() - start
            assert entry.pinned
            assert isinstance(entry.kpes, MappedRelation)
            rows.append(("serve pin .rcd (mapped)", N_JOIN, pin_seconds, None))
        finally:
            registry.close()

    return ExperimentResult(
        exp_id="Ablation A10",
        title=f"Mapped .rcd datasets: build once, join many ({N_RECTS:,} rects)",
        columns=["stage", "n", "seconds", "speedup_vs_ingest"],
        rows=[
            (stage, n, round(seconds, 6), None if s is None else round(s, 1))
            for stage, n, seconds, s in rows
        ],
        paper_claim=(
            "a preprocessed binary format amortises load cost across many "
            "joins: reopen is a header read plus one mmap, O(ms) at any "
            "cardinality, with byte-identical join output"
        ),
        notes=[f"machine cpu_count={cpu_count()}", f"N_JOIN={N_JOIN:,}"],
    )


@pytest.mark.benchmark(group="mmap")
def test_mmap_reopen_amortization(benchmark):
    if not numpy_enabled():
        pytest.skip("mapped stores need numpy")
    result = benchmark.pedantic(run_mmap_bench, rounds=1, iterations=1)
    stages = column(result, "stage")
    seconds = column(result, "seconds")
    by_stage = dict(zip(stages, seconds))
    ingest_seconds = by_stage["ingest .npy (parse+validate)"]
    reopen_seconds = by_stage["reopen .rcd (mmap)"]
    speedup = ingest_seconds / reopen_seconds
    record(
        "mmap",
        result,
        workload=f"uniform {N_RECTS:,} rects; joins at {N_JOIN:,}/side",
        n_rects=N_RECTS,
        ingest_seconds=ingest_seconds,
        reopen_seconds=reopen_seconds,
        reopen_speedup=round(speedup, 1),
        wall_seconds=by_stage,
    )
    assert reopen_seconds <= MAX_REOPEN_SECONDS
    assert speedup >= MIN_REOPEN_SPEEDUP, (
        f"reopen only {speedup:.1f}x faster than ingest "
        f"({reopen_seconds:.4f}s vs {ingest_seconds:.4f}s)"
    )
