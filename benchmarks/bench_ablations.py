"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: the formula-(1) safety factor t, the
space-filling-curve choice, the tiles-per-partition ratio, and the S3J
hierarchy depth.
"""

import pytest

from repro.bench.experiments import (
    run_ablation_max_level,
    run_ablation_ntiles,
    run_ablation_s3j_strategy,
    run_ablation_sfc,
    run_ablation_t_factor,
)

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="ablations")
def test_ablation_t_factor(benchmark):
    result = benchmark.pedantic(run_ablation_t_factor, rounds=1, iterations=1)
    record("ablation_t_factor", result)
    t = column(result, "t")
    partitions = column(result, "P")
    events = column(result, "repartition_events")
    # More safety margin -> more partitions, less repartitioning.
    assert partitions == sorted(partitions)
    assert events[-1] <= events[0]


@pytest.mark.benchmark(group="ablations")
def test_ablation_sfc(benchmark):
    result = benchmark.pedantic(run_ablation_sfc, rounds=1, iterations=1)
    record("ablation_sfc", result)
    curves = column(result, "curve")
    cpu = dict(zip(curves, column(result, "cpu_sec")))
    codes = dict(zip(curves, column(result, "codes")))
    results = column(result, "results")
    # Identical work, identical answers...
    assert codes["peano"] == codes["hilbert"]
    assert results[0] == results[1]
    # ...but Hilbert codes cost more CPU (the reason the paper uses Peano).
    assert cpu["hilbert"] > cpu["peano"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_ntiles(benchmark):
    result = benchmark.pedantic(run_ablation_ntiles, rounds=1, iterations=1)
    record("ablation_ntiles", result)
    tiles = column(result, "tiles_per_P")
    replication = column(result, "replication")
    # Finer grids replicate more (more tile borders to straddle).
    assert replication[-1] > replication[0]
    assert tiles == sorted(tiles)


@pytest.mark.benchmark(group="ablations")
def test_ablation_s3j_strategy(benchmark):
    result = benchmark.pedantic(run_ablation_s3j_strategy, rounds=1, iterations=1)
    record("ablation_s3j_strategy", result)
    strategies = column(result, "strategy")
    replication = dict(zip(strategies, column(result, "replication")))
    tests = dict(zip(strategies, column(result, "tests")))
    # hybrid replicates less than full size separation...
    assert replication["original"] <= replication["hybrid"] <= replication["size"]
    # ...while removing the bulk of the original's intersection tests.
    assert tests["hybrid"] < tests["original"] / 5
    assert tests["size"] <= tests["hybrid"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_max_level(benchmark):
    result = benchmark.pedantic(run_ablation_max_level, rounds=1, iterations=1)
    record("ablation_max_level", result)
    levels = column(result, "max_level")
    tests = column(result, "tests")
    # Deeper hierarchies separate sizes better: fewer intersection tests.
    assert tests[-1] < tests[0]
    assert levels == sorted(levels)
