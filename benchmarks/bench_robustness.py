"""Robustness benches: scale stability and workload families.

* **R1 — scale stability**: EXPERIMENTS.md claims the reproduced shapes
  are stable in `REPRO_SCALE`.  This bench runs the Figure 3 and Figure
  11 comparisons at two generated scales and asserts the orderings and
  approximate factors agree.
* **R2 — workload families**: the PBSM-vs-S³J ordering must not be an
  artifact of the TIGER-like generator; re-checked on Manhattan-grid,
  radial-city and mixed-scale data.
"""

import pytest

from repro.bench.render import ExperimentResult
from repro.datasets import polyline_mbrs, scale_to_coverage
from repro.datasets.patterns import manhattan_grid, mixed_scale, radial_city
from repro.pbsm import PBSM
from repro.s3j import S3J

from benchmarks.conftest import column, record


def _la_like(n, seed, coverage):
    return scale_to_coverage(polyline_mbrs(n, seed), coverage, min_edge=1e-5)


def run_scale_stability() -> ExperimentResult:
    rows = []
    for n in (6_000, 18_000):
        left = _la_like(n, 101, 0.22)
        right = _la_like(n, 202, 0.03)
        memory = int(2 * n * 20 * 0.5)
        pd = PBSM(memory, dedup="sort").run(left, right)
        rp = PBSM(memory, dedup="rpm").run(left, right)
        orig = S3J(memory, replicate=False).run(left, right)
        repl = S3J(memory, replicate=True).run(left, right)
        rows.append(
            (
                n,
                round(pd.stats.sim_seconds / rp.stats.sim_seconds, 3),
                round(orig.stats.sim_seconds / repl.stats.sim_seconds, 3),
                round(orig.stats.sim_cpu_seconds / repl.stats.sim_cpu_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Robustness R1",
        title="Key runtime ratios at two generated scales",
        columns=["n_per_side", "PD/RP", "S3Jorig/S3Jrepl", "cpu_orig/repl"],
        rows=rows,
        paper_claim="figure shapes are scale-stable (EXPERIMENTS.md setup note)",
    )


def run_workload_families() -> ExperimentResult:
    families = {
        "tiger": lambda seed, start: _la_like(8_000, seed, 0.1),
        "manhattan": lambda seed, start: manhattan_grid(8_000, seed, start_oid=start),
        "radial": lambda seed, start: radial_city(8_000, seed, start_oid=start),
        "mixed": lambda seed, start: mixed_scale(8_000, seed, start_oid=start),
    }
    rows = []
    for name, make in families.items():
        left = make(11, 0)
        right = make(22, 10**6)
        memory = int(16_000 * 20 * 0.4)
        pbsm = PBSM(memory, internal="sweep_trie").run(left, right)
        s3j = S3J(memory).run(left, right)
        assert pbsm.pair_set() == s3j.pair_set(), name
        rows.append(
            (
                name,
                pbsm.stats.n_results,
                round(pbsm.stats.sim_seconds, 2),
                round(s3j.stats.sim_seconds, 2),
                round(s3j.stats.sim_seconds / pbsm.stats.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Robustness R2",
        title="PBSM(trie) vs S3J(repl) across workload families",
        columns=["family", "results", "pbsm_sec", "s3j_sec", "ratio"],
        rows=rows,
        paper_claim="PBSM outperforms S3J on average (~2x) across real data",
    )


@pytest.mark.benchmark(group="robustness")
def test_scale_stability(benchmark):
    result = benchmark.pedantic(run_scale_stability, rounds=1, iterations=1)
    record("robustness_scale", result)
    pd_rp = column(result, "PD/RP")
    s3j_ratio = column(result, "S3Jorig/S3Jrepl")
    cpu_ratio = column(result, "cpu_orig/repl")
    # Orderings hold at both scales (RPM no slower; replication faster).
    assert all(ratio >= 1.0 for ratio in pd_rp)
    assert all(ratio > 1.2 for ratio in s3j_ratio)
    assert all(ratio > 3.0 for ratio in cpu_ratio)
    # Replication's advantage grows (or at worst holds) with scale: the
    # original's boundary-victim collisions multiply with density.
    assert s3j_ratio[-1] >= s3j_ratio[0]


@pytest.mark.benchmark(group="robustness")
def test_workload_families(benchmark):
    result = benchmark.pedantic(run_workload_families, rounds=1, iterations=1)
    record("robustness_families", result)
    ratios = column(result, "ratio")
    # PBSM(trie) wins on every family (the paper's bottom line).
    assert all(ratio > 1.0 for ratio in ratios)
