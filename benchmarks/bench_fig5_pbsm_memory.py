"""Figure 5: PBSM(list) vs PBSM(trie) over available memory (J5).

The paper's counter-intuitive finding: the list variant does not improve —
and eventually degrades — as memory grows (larger partitions mean longer
sweep-line status lists), while the trie variant keeps improving; the trie
is the right choice for large memories.
"""

import pytest

from repro.bench.experiments import run_fig5

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="fig5")
def test_fig5_pbsm_over_memory(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    record("fig5", result)
    mem = column(result, "mem_%input")
    list_sec = column(result, "list_sec")
    trie_sec = column(result, "trie_sec")

    # Trie is the clear winner once partitions are large (largest memory).
    assert trie_sec[-1] < list_sec[-1]
    assert list_sec[-1] / trie_sec[-1] > 1.5

    # The list variant does NOT improve with large memories: its runtime at
    # the largest budget is no better than its best mid-range point.
    mid = [s for m, s in zip(mem, list_sec) if 20 <= m <= 50]
    assert list_sec[-1] >= min(mid)

    # The trie variant keeps improving (or at worst plateaus) with memory.
    assert trie_sec[-1] <= trie_sec[0]

    # Partition count shrinks as memory grows (formula (1)).
    partitions = column(result, "P")
    assert partitions == sorted(partitions, reverse=True)
