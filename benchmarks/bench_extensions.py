"""Benches for the extension systems beyond the paper's figures.

* **A5 — refinement-step access pattern**: the §3.1 trade-off behind
  original PBSM's design.  Sorting the (complete) candidate set by the
  objects' physical address turns the refinement step's geometry fetches
  nearly sequential; pipelined (RPM-style) refinement pays random
  fetches, softened by the page buffer.  Kernels (BKSS 94) — which only
  the online variant can exploit *during* the filter step — cut exact
  tests in both.
* **A6 — all join classes**: PBSM/S3J/SSSJ (no index), SHJ (one-side
  replication), and the R-tree join (index on both, build charged or
  free) on the same workload — the availability-of-index taxonomy of the
  paper's related work, measured.
"""

import random

import pytest

from repro.bench.render import ExperimentResult
from repro.bench.workloads import la_join, la_memory
from repro.io.disk import SimulatedDisk
from repro.pbsm import PBSM
from repro.refine import GeometryStore, refine, regular_polygon
from repro.rtree import RTreeJoin
from repro.s3j import S3J
from repro.shj import SpatialHashJoin
from repro.sssj import SSSJ

from benchmarks.conftest import column, record


def run_ablation_refinement() -> ExperimentResult:
    rng = random.Random(17)
    disk = SimulatedDisk()
    store_left = GeometryStore(disk, objects_per_page=8, buffer_pages=8)
    store_right = GeometryStore(disk, objects_per_page=8, buffer_pages=8)
    n = 400
    for i in range(n):
        store_left.add(i, regular_polygon(rng.random(), rng.random(), 0.05))
    for i in range(n):
        store_right.add(10_000 + i, regular_polygon(rng.random(), rng.random(), 0.05))
    candidates = [
        (rng.randrange(n), 10_000 + rng.randrange(n)) for _ in range(3_000)
    ]
    rows = []
    for label, clustered, kernels in (
        ("random", False, False),
        ("random+kernels", False, True),
        ("clustered", True, False),
        ("clustered+kernels", True, True),
    ):
        store_left.reset_buffer()
        store_right.reset_buffer()
        result = refine(
            candidates,
            store_left,
            store_right,
            clustered=clustered,
            use_kernels=kernels,
        )
        rows.append(
            (
                label,
                round(result.stats.io_units),
                result.stats.exact_tests,
                result.stats.kernel_hits,
                result.stats.confirmed,
            )
        )
    return ExperimentResult(
        exp_id="Ablation A5",
        title="Refinement step: candidate ordering and kernel approximations",
        columns=["mode", "io_units", "exact_tests", "kernel_hits", "confirmed"],
        rows=rows,
        paper_claim=(
            "sorting candidates by physical address reduces random "
            "accesses (the PD rationale, Sec 3.1); kernels avoid exact "
            "tests (BKSS 94)"
        ),
    )


def run_join_class_comparison() -> ExperimentResult:
    left, right = la_join("J1")
    memory = la_memory(left, right)
    rows = []
    for label, driver in (
        ("PBSM(trie,RPM)", PBSM(memory, internal="sweep_trie")),
        ("S3J(repl)", S3J(memory)),
        ("SSSJ", SSSJ(memory)),
        ("SHJ", SpatialHashJoin(memory)),
        ("RTree(build)", RTreeJoin(fanout=64, prebuilt=False)),
        ("RTree(prebuilt)", RTreeJoin(fanout=64, prebuilt=True)),
    ):
        result = driver.run(left, right)
        rows.append(
            (
                label,
                result.stats.n_results,
                round(result.stats.io_units),
                round(result.stats.sim_cpu_seconds, 2),
                round(result.stats.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Ablation A6",
        title="All join classes on J1 (availability-of-index taxonomy)",
        columns=["method", "results", "io_units", "cpu_sec", "total_sec"],
        rows=rows,
        paper_claim=(
            "the index join is hard to beat when indices pre-exist; "
            "among no-index methods PBSM wins (Sec 1/related work)"
        ),
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_refinement(benchmark):
    result = benchmark.pedantic(run_ablation_refinement, rounds=1, iterations=1)
    record("ablation_refinement", result)
    modes = column(result, "mode")
    io = dict(zip(modes, column(result, "io_units")))
    tests = dict(zip(modes, column(result, "exact_tests")))
    confirmed = set(column(result, "confirmed"))
    assert len(confirmed) == 1  # every mode agrees on the answer
    assert io["clustered"] < io["random"]
    assert tests["random+kernels"] < tests["random"]


@pytest.mark.benchmark(group="ablations")
def test_join_class_comparison(benchmark):
    result = benchmark.pedantic(run_join_class_comparison, rounds=1, iterations=1)
    record("ablation_join_classes", result)
    methods = column(result, "method")
    totals = dict(zip(methods, column(result, "total_sec")))
    results = set(column(result, "results"))
    assert len(results) == 1  # identical result sets
    # With pre-existing indices the R-tree join's I/O advantage shows.
    assert totals["RTree(prebuilt)"] <= totals["RTree(build)"]
