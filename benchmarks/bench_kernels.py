"""Bench A8: columnar kernel speedup and real multiprocess PBSM.

Two wall-clock claims ride on the kernels package:

* on a Fig.4-style large partition (100k rectangles a side) the vectorized
  forward-scan kernel (``sweep_numpy``) beats the list sweep by >= 10x —
  the batched candidate generation turns the per-element probe loop into
  a handful of array operations;
* ``ParallelPBSM(executor="process")`` actually speeds the join phase up
  on multicore hardware while producing byte-identical results.  The
  multicore assertion is gated on the machine's CPU count — on a single
  core the fan-out can only add IPC overhead, which the recorded JSON
  still documents honestly.

Unlike the figure benches these assert *wall clock*, not simulated
seconds: the kernels change no simulated cost, only real speed.
"""

import time

import pytest

from repro.bench.render import ExperimentResult
from repro.core.stats import CpuCounters
from repro.datasets import uniform_rects
from repro.internal import INTERNAL_ALGORITHMS
from repro.io.costmodel import mb
from repro.kernels.backend import cpu_count, numpy_enabled
from repro.obs import KIND_SECTION, NULL_TRACER, Tracer
from repro.pbsm.parallel import ParallelPBSM

from benchmarks.conftest import column, record

#: The Fig.4-style large partition: 100k rectangles a side.
N_LARGE = 100_000
#: Mean rectangle edge: ~200 simultaneously active rectangles, the
#: "large partition" regime where the list sweep's O(n * active) hurts
#: while the kernel's y-striping keeps candidates near the result size.
MEAN_EDGE = 0.002

MIN_KERNEL_SPEEDUP = 10.0
MIN_PROCESS_SPEEDUP = 2.0
PROCESS_WORKERS = 4


def _timed_internal(name: str, left, right):
    algo = INTERNAL_ALGORITHMS[name]
    counters = CpuCounters()
    pairs = 0

    def count(r, s):
        nonlocal pairs
        pairs += 1

    start = time.perf_counter()
    algo(left, right, lambda r, s: count(r, s), counters)
    seconds = time.perf_counter() - start
    return pairs, seconds


def run_kernel_microbench(tracer=None) -> ExperimentResult:
    # Spans are recorded *after* each timed region (add_span with the
    # measured wall), so tracing costs the measurement nothing.
    tracer = tracer if tracer is not None else NULL_TRACER
    left = uniform_rects(N_LARGE, seed=81, mean_edge=MEAN_EDGE)
    right = uniform_rects(
        N_LARGE, seed=82, start_oid=1_000_000, mean_edge=MEAN_EDGE
    )
    rows = []
    base_seconds = None
    for name in ("sweep_list", "sweep_numpy"):
        pairs, seconds = _timed_internal(name, left, right)
        if base_seconds is None:
            base_seconds = seconds
        tracer.add_span(
            name, seconds, kind=KIND_SECTION, pairs=pairs, n=N_LARGE
        )
        rows.append(
            (
                name,
                pairs,
                round(seconds, 3),
                round(base_seconds / seconds, 1),
                round(pairs / seconds) if seconds > 0 else 0,
            )
        )
    return ExperimentResult(
        exp_id="Ablation A8a",
        title=f"Forward-scan kernel vs list sweep ({N_LARGE:,} rects/side)",
        columns=["internal", "pairs", "wall_sec", "speedup", "pairs_per_sec"],
        rows=rows,
        paper_claim=(
            "vectorized candidate generation removes the per-element probe "
            "loop the list sweep pays on large partitions (Fig. 4 regime)"
        ),
    )


def run_process_pbsm_bench(tracer=None) -> ExperimentResult:
    # Only the last (most parallel) config runs with the live tracer, so
    # the baseline configs' walls stay untouched and the trace still
    # shows the worker/task fan-out; each config also gets a summary
    # span added outside its timed region.
    tracer = tracer if tracer is not None else NULL_TRACER
    left = uniform_rects(40_000, seed=83, mean_edge=MEAN_EDGE)
    right = uniform_rects(
        40_000, seed=84, start_oid=1_000_000, mean_edge=MEAN_EDGE
    )
    memory = mb(0.25)
    rows = []
    base_seconds = None
    base_pairs = None
    configs = (
        ("simulated", 1),
        ("process", 1),
        ("process", PROCESS_WORKERS),
    )
    for executor, workers in configs:
        live_trace = tracer if (executor, workers) == configs[-1] else None
        join = ParallelPBSM(
            memory, workers, internal="sweep_numpy", executor=executor,
            tracer=live_trace,
        )
        start = time.perf_counter()
        result = join.run(left, right)
        seconds = time.perf_counter() - start
        if live_trace is None:
            tracer.add_span(
                "config", seconds, kind=KIND_SECTION,
                executor=executor, workers=workers,
            )
        if base_seconds is None:
            base_seconds = seconds
            base_pairs = result.pairs
        # Identical task decomposition => identical ordered output.
        if workers == 1:
            assert result.pairs == base_pairs
        else:
            assert set(result.pairs) == set(base_pairs)
        rows.append(
            (
                f"{executor}/W={workers}",
                len(result.pairs),
                round(seconds, 3),
                round(base_seconds / seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Ablation A8b",
        title="ParallelPBSM: process executor vs sequential (sweep_numpy)",
        columns=["executor", "pairs", "wall_sec", "speedup"],
        rows=rows,
        paper_claim=(
            "RPM makes partition pairs independent, so the join phase "
            "fans out over real processes without coordination"
        ),
        notes=[f"machine cpu_count={cpu_count()}"],
    )


@pytest.mark.benchmark(group="kernels")
def test_kernel_speedup(benchmark):
    tracer = Tracer()
    result = benchmark.pedantic(
        run_kernel_microbench, args=(tracer,), rounds=1, iterations=1
    )
    walls = column(result, "wall_sec")
    pairs = column(result, "pairs")
    speedups = column(result, "speedup")
    record(
        "kernels_forward_scan",
        result,
        tracer=tracer,
        workload=f"uniform {N_LARGE:,}x{N_LARGE:,}, mean_edge={MEAN_EDGE}",
        wall_seconds=dict(zip(column(result, "internal"), walls)),
        pairs_per_second=dict(
            zip(column(result, "internal"), column(result, "pairs_per_sec"))
        ),
    )
    assert len(set(pairs)) == 1  # identical result count
    if numpy_enabled():
        assert speedups[-1] >= MIN_KERNEL_SPEEDUP


@pytest.mark.benchmark(group="kernels")
def test_process_pbsm_speedup(benchmark):
    tracer = Tracer()
    result = benchmark.pedantic(
        run_process_pbsm_bench, args=(tracer,), rounds=1, iterations=1
    )
    walls = column(result, "wall_sec")
    speedups = column(result, "speedup")
    record(
        "kernels_process_pbsm",
        result,
        tracer=tracer,
        workload="uniform 40,000x40,000 PBSM join, memory=0.25MB",
        wall_seconds=dict(zip(column(result, "executor"), walls)),
    )
    # The >=2x claim needs real cores; a single-CPU container can only
    # document the overhead, which the JSON records either way.
    if cpu_count() >= PROCESS_WORKERS and numpy_enabled():
        assert speedups[-1] >= MIN_PROCESS_SPEEDUP
