"""Table 2: the experiment joins J1..J5 (result counts, selectivity)."""

import pytest

from repro.bench.experiments import run_table2

from benchmarks.conftest import column, record


@pytest.mark.benchmark(group="table2")
def test_table2_joins(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    record("table2", result)
    names = column(result, "join")
    results = dict(zip(names, column(result, "results")))
    sel = dict(zip(names, column(result, "selectivity")))
    # Result counts and selectivities must grow strictly J1 -> J4, as the
    # (p) scaling quadratically inflates coverage (Table 2's pattern).
    assert results["J1"] < results["J2"] < results["J3"] < results["J4"]
    assert sel["J1"] < sel["J2"] < sel["J3"] < sel["J4"]
    # J5 is the largest join by input size and produces the most results
    # of the unscaled joins.
    assert results["J5"] > results["J1"]
    # J5's selectivity is of the same order as J1's (both unscaled data).
    assert sel["J5"] < sel["J2"]
