"""Bench A9: zero-copy shared memory vs pickle transport in ParallelPBSM.

The claim under test: on a 100k-rectangle-per-side PBSM join, shipping
partition *indices* through one shared-memory segment moves the
process-pool traffic from megabytes of pickled records down to task
tuples and manifests — at least 10x fewer IPC bytes — while the join
output stays byte-identical to the sequential execution and the wall
clock is no worse at any worker count.

Wall-clock speedup over the pickle transport needs real cores; on a
single-CPU container the bytes ratio and byte-identity still assert,
and the JSON records the walls honestly either way.
"""

import time

import pytest

from repro.bench.render import ExperimentResult
from repro.datasets import uniform_rects
from repro.io.costmodel import mb
from repro.kernels.backend import cpu_count, numpy_enabled
from repro.kernels.shm import shm_enabled
from repro.pbsm.parallel import ParallelPBSM

from benchmarks.conftest import column, record

#: The headline workload: 100k rectangles a side (Fig. 4 regime).
N_SIDE = 100_000
MEAN_EDGE = 0.002
MEMORY = mb(0.5)

MIN_BYTES_RATIO = 10.0
#: Wall tolerance for "no slower": scheduling jitter on busy CI boxes.
WALL_TOLERANCE = 1.10
WALL_SLACK_SECONDS = 0.05


def _worker_counts():
    counts = {1, 2}
    counts.update(range(2, min(cpu_count(), 4) + 1))
    return sorted(counts)


def run_parallel_shm_bench() -> ExperimentResult:
    left = uniform_rects(N_SIDE, seed=91, mean_edge=MEAN_EDGE)
    right = uniform_rects(
        N_SIDE, seed=92, start_oid=1_000_000, mean_edge=MEAN_EDGE
    )
    rows = []
    for workers in _worker_counts():
        reference = None
        configs = (
            [("simulated", False)]
            if workers == 1
            else [("simulated", False), ("pickle", False), ("shm", True)]
        )
        for label, shared in configs:
            executor = "simulated" if label == "simulated" else "process"
            join = ParallelPBSM(
                MEMORY,
                workers,
                internal="sweep_numpy",
                executor=executor,
                shared_memory=shared,
            )
            start = time.perf_counter()
            result = join.run(left, right)
            seconds = time.perf_counter() - start
            if reference is None:
                reference = result.pairs
            # The tentpole claim: every transport reproduces the
            # sequential output byte for byte, not merely as a set.
            assert result.pairs == reference
            rows.append(
                (
                    label,
                    workers,
                    len(result.pairs),
                    round(seconds, 3),
                    result.stats.ipc_bytes_shipped,
                    round(result.stats.ipc_seconds, 4),
                )
            )
    return ExperimentResult(
        exp_id="Ablation A9",
        title=f"Pickle vs shared-memory transport ({N_SIDE:,} rects/side)",
        columns=[
            "transport",
            "workers",
            "pairs",
            "wall_sec",
            "ipc_bytes",
            "ipc_sec",
        ],
        rows=rows,
        paper_claim=(
            "partition tasks are index ranges into one shared segment, so "
            "the pool ships task tuples instead of replicated record lists"
        ),
        notes=[f"machine cpu_count={cpu_count()}"],
    )


@pytest.mark.benchmark(group="parallel")
def test_parallel_shm_bytes_and_wall(benchmark):
    if not (numpy_enabled() and shm_enabled()):
        pytest.skip("shared-memory transport needs numpy and POSIX shm")
    result = benchmark.pedantic(
        run_parallel_shm_bench, rounds=1, iterations=1
    )
    transports = column(result, "transport")
    workers = column(result, "workers")
    walls = column(result, "wall_sec")
    ipc_bytes = column(result, "ipc_bytes")
    by_key = {
        (t, w): (wall, b)
        for t, w, wall, b in zip(transports, workers, walls, ipc_bytes)
    }
    record(
        "parallel_shm",
        result,
        workload=f"uniform {N_SIDE:,}x{N_SIDE:,} PBSM join, memory=0.5MB",
        wall_seconds={
            f"{t}/W={w}": wall for t, w, wall in zip(transports, workers, walls)
        },
        ipc_bytes={
            f"{t}/W={w}": b for t, w, b in zip(transports, workers, ipc_bytes)
        },
    )
    multi = sorted({w for w in workers if w > 1})
    assert multi, "bench must cover at least one multi-worker count"
    for w in multi:
        pickle_wall, pickle_bytes = by_key[("pickle", w)]
        shm_wall, shm_bytes = by_key[("shm", w)]
        assert shm_bytes > 0
        assert pickle_bytes >= MIN_BYTES_RATIO * shm_bytes
        assert shm_wall <= pickle_wall * WALL_TOLERANCE + WALL_SLACK_SECONDS
